"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``config``   — print the Table I machine description.
* ``table2``   — characterise applications (Table II columns).
* ``compare``  — run one workload under several NUCA schemes.
* ``sweep``    — run a workloads x schemes grid through the parallel
  sweep engine (process pool, result cache, resumable journal; see
  ``docs/SWEEPS.md``).
* ``search``   — design-space exploration: multi-fidelity
  (successive-halving) search over NUCA/ReRAM configurations with
  Pareto-frontier extraction (see ``docs/SEARCH.md``).
* ``workloads``— show the generated WL1..WL10 mixes.
* ``trace``    — generate a synthetic application trace to a .npz file,
  or export a sweep's span file to Chrome/Perfetto trace JSON
  (``repro trace export OUT --spans spans.jsonl``).
* ``endoflife``— sweep cache age under fault injection (degradation study).
* ``stats``    — telemetry deep-dive: registry summary, interval series
  and a per-bank write heatmap over time (see ``docs/OBSERVABILITY.md``);
  ``--from-spans spans.jsonl`` prints a per-phase wall-time table instead.
* ``top``      — live ANSI dashboard for a running sweep: polls a
  ``--serve`` monitor's ``/status``, or reconstructs the view from the
  journal and span files of a finished run.
* ``diff``     — metric regression gate: compare two result sets (saved
  matrices or run ledgers) under per-metric tolerance rules; exits 1 on
  any violation, which is what CI gates on.
* ``report``   — render a saved matrix (plus optionally its run ledger)
  as one self-contained HTML file: inline SVG/CSS, no external refs.
* ``bench-record`` — append a timing/IPC point to a machine-readable
  ``BENCH_*.json`` trajectory.
* ``history``  — longitudinal history layer: index run ledgers,
  ``BENCH_*.json`` trajectories and saved search outcomes into one
  provenance-keyed store; ``--html`` renders frontier-evolution
  overlays and per-scheme metric sparklines; ``history check`` gates
  metric trajectories over a sliding window and exits 1 on sustained
  drift (see docs/OBSERVABILITY.md).

Every simulation command takes ``--instructions`` and ``--seed``;
results are printed as the same text tables the benchmark harness
emits.  ``compare``, ``sweep``, ``stats`` and ``endoflife`` additionally
accept ``--trace-out FILE`` (JSONL event trace), ``--profile``
(phase-timer report) and ``--ledger FILE`` (append run-provenance
records); the sweep-engine commands take ``--jobs/-j`` (worker
processes) and ``--progress`` (live single-line status with ETA);
the sweep-engine commands also take ``--retries N`` (transient-failure
retry budget), ``--job-timeout SECONDS`` (per-job watchdog deadline;
see docs/RESILIENCE.md), ``--serve [PORT]`` (live ``/status`` and
``/metrics`` HTTP monitor on 127.0.0.1) and ``--spans FILE``
(cross-process span recording; see docs/OBSERVABILITY.md); invoking
``repro`` with no subcommand prints the full help and exits 2.

User-facing failures (unknown application, malformed trace file,
inconsistent configuration — anything deriving from
:class:`~repro.common.errors.ReproError`) print a one-line
``error: ...`` to stderr and exit with status 2; tracebacks are reserved
for actual bugs.  ``diff`` and ``history check`` reserve exit status 1
for tolerance violations, keeping it distinct from usage errors.  ``sweep
--keep-going`` reserves exit status 3 for a sweep that completed with
quarantined FAILED cells, and an interrupted, gracefully drained sweep
exits 130 with a resume hint.
"""

from __future__ import annotations

import argparse
import sys

from repro.common.errors import ReproError, SweepCancelled
from repro.config import baseline_config
from repro.experiments.report import format_table, render_table2
from repro.experiments.table2 import run_table2
from repro.sim.runner import Stage1Cache, run_workload
from repro.telemetry import Telemetry
from repro.trace.profiles import get_profile, intensity_class
from repro.trace.workloads import make_workloads


def _package_version() -> str:
    """Installed package version, falling back to the source tree's."""
    try:
        from importlib.metadata import PackageNotFoundError, version

        return version("repro")
    except PackageNotFoundError:
        from repro import __version__

        return __version__


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--instructions", type=int, default=60_000,
                        help="instruction budget per core (default 60000)")
    parser.add_argument("--seed", type=int, default=1,
                        help="experiment seed (default 1)")


def _add_telemetry(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--trace-out", metavar="FILE", default=None,
                        help="write a JSONL event trace to FILE")
    parser.add_argument("--profile", action="store_true",
                        help="print a phase-timer report after the run")


def _add_jobs(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--jobs", "-j", type=int, default=1, metavar="N",
                        help="worker processes for the sweep engine "
                             "(default 1 = in-process serial)")
    parser.add_argument("--progress", action="store_true",
                        help="live single-line progress with ETA "
                             "(replaces per-cell narration)")
    parser.add_argument("--retries", type=int, default=1, metavar="N",
                        help="retry budget per job for transient failures, "
                             "crashes and timeouts (default 1)")
    parser.add_argument("--job-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="per-job watchdog deadline in wall-clock "
                             "seconds, scaled up for instruction budgets "
                             "above the default (default: no watchdog)")


def _add_stage1(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--stage1-cache", metavar="DIR", default=None,
                        help="shared on-disk stage-1 characterisation store; "
                             "workers, rungs and repeat runs reuse one "
                             "characterisation per (app, config, seed, "
                             "budget) (see docs/PERFORMANCE.md)")


def _add_ledger(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--ledger", metavar="FILE", default=None,
                        help="append run-provenance records (JSONL ledger; "
                             "see docs/OBSERVABILITY.md)")


def _add_monitor(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--serve", nargs="?", const=0, type=int, default=None,
                        metavar="PORT",
                        help="serve GET /status and /metrics on 127.0.0.1 "
                             "while the sweep runs (bare --serve binds an "
                             "ephemeral port; watch with 'repro top --url')")
    parser.add_argument("--spans", metavar="FILE", default=None,
                        help="record cross-process spans to FILE "
                             "(spans.jsonl; export with 'repro trace "
                             "export', summarise with 'repro stats "
                             "--from-spans')")


def _start_monitor(args, total: int, *, label=None, registry=None):
    """``(state, server)`` when ``--serve`` is set, else ``(None, None)``.

    The bound URL goes to stderr (the CI smoke job greps it from the
    redirected log to discover an ephemeral port).
    """
    if getattr(args, "serve", None) is None:
        return None, None
    from repro.obs.server import MonitorServer, MonitorState

    state = MonitorState(
        total, workers=max(1, getattr(args, "jobs", 1)),
        label=label, registry=registry,
    )
    server = MonitorServer(state, registry=registry, port=args.serve)
    port = server.start()
    print(f"monitor serving http://127.0.0.1:{port}", file=sys.stderr)
    return state, server


def _make_telemetry(args, **kwargs) -> Telemetry | None:
    """A Telemetry handle when any observability flag is set, else None."""
    if not (args.trace_out or args.profile):
        return None
    return Telemetry(trace=bool(args.trace_out), profile=args.profile, **kwargs)


def _make_progress(args, total: int):
    """A live :class:`~repro.obs.progress.SweepProgress`, or None."""
    if not getattr(args, "progress", False):
        return None
    from repro.obs.progress import SweepProgress

    return SweepProgress(total=total, workers=max(1, args.jobs))


def _cmd_config(_args) -> int:
    print(baseline_config().describe())
    return 0


def _cmd_table2(args) -> int:
    apps = tuple(args.apps) if args.apps else None
    rows = run_table2(apps=apps, seed=args.seed,
                      n_instructions=args.instructions)
    print(render_table2(rows))
    return 0


def _cmd_compare(args) -> int:
    config = baseline_config()
    workloads = make_workloads(num_cores=config.num_cores, seed=args.seed)
    index = args.workload - 1
    if not (0 <= index < len(workloads)):
        print(f"error: workload must be 1..{len(workloads)}", file=sys.stderr)
        return 2
    workload = workloads[index]
    print(f"{workload.name}: {', '.join(workload.apps)}\n")
    stage1 = Stage1Cache(store=args.stage1_cache)
    telemetry = _make_telemetry(args)
    observer = _make_progress(args, total=len(args.schemes))
    rows = []
    traced = 0
    # Span recording and the monitor endpoint live in the sweep engine,
    # so either flag routes through it even single-worker.
    if args.jobs > 1 or args.spans is not None or args.serve is not None:
        from repro.jobs.scheduler import matrix_jobs, run_jobs
        from repro.obs.progress import tee_observers

        jobs = matrix_jobs(
            [workload], tuple(args.schemes), config,
            seed=args.seed, n_instructions=args.instructions,
        )
        monitor, server = _start_monitor(
            args, len(jobs), label=workload.name,
            registry=telemetry.registry if telemetry is not None else None,
        )
        if observer is not None and server is not None:
            observer.serving = server.port
        try:
            results, _report = run_jobs(
                jobs, max_workers=args.jobs, telemetry=telemetry,
                stage1_store=args.stage1_cache,
                observer=tee_observers(
                    observer,
                    monitor.observe if monitor is not None else None,
                ),
                ledger=args.ledger,
                retries=args.retries, job_timeout_s=args.job_timeout,
                spans=args.spans,
            )
            if monitor is not None:
                monitor.finish()
        finally:
            if server is not None:
                server.stop()
        if observer is not None:
            observer.close()
        if telemetry is not None and telemetry.trace is not None:
            # Merged worker events arrive stamped with their scheme, so
            # one export replaces the serial per-scheme flush.
            traced = telemetry.trace.export_jsonl(args.trace_out)
    else:
        import time as _time

        from repro.obs.progress import JobEvent

        results = []
        for number, scheme in enumerate(args.schemes):
            if observer is not None:
                observer(JobEvent(
                    "dispatch", f"{workload.name}/{scheme}", number,
                ))
            started = _time.perf_counter()
            results.append(run_workload(
                workload, scheme, config, seed=args.seed,
                n_instructions=args.instructions, stage1=stage1,
                telemetry=telemetry, ledger=args.ledger,
            ))
            if observer is not None:
                observer(JobEvent(
                    "done", f"{workload.name}/{scheme}", number,
                    wall_time_s=_time.perf_counter() - started,
                ))
            if telemetry is not None and telemetry.trace is not None:
                traced += telemetry.trace.export_jsonl(
                    args.trace_out, append=number > 0,
                    extra={"scheme": scheme},
                )
                telemetry.trace.clear()
        if observer is not None:
            observer.close()
    for result in results:
        rows.append((
            result.scheme, result.ipc, result.min_lifetime,
            result.wear_cov,
            result.llc_fetch_hit_rate,
        ))
    print(format_table(
        ["scheme", "IPC", "min life [y]", "wear CV", "LLC hit"], rows
    ))
    if args.trace_out:
        print(f"\nwrote {traced} events to {args.trace_out}")
    if args.profile:
        print("\n" + telemetry.profiler.report())
    return 0


def _cmd_workloads(args) -> int:
    for workload in make_workloads(num_cores=16, seed=args.seed):
        classes = [intensity_class(get_profile(a))[0].upper() for a in workload.apps]
        print(f"{workload.name}: {', '.join(workload.apps)}")
        print(f"      intensity: {''.join(classes)} "
              f"({classes.count('H')} high / {classes.count('M')} medium / "
              f"{classes.count('L')} low)")
    return 0


def _cmd_trace(args) -> int:
    # ``repro trace export OUT --spans FILE``: the Chrome/Perfetto
    # exporter rides on the trace command ("export" is not a Table II
    # application name, so the positional dispatch is unambiguous).
    if args.app == "export":
        from repro.obs.chrome_trace import export_chrome_trace

        spans_path = args.spans or "spans.jsonl"
        count = export_chrome_trace(spans_path, args.output)
        print(f"wrote {count} trace events from {spans_path} to "
              f"{args.output} (open in https://ui.perfetto.dev "
              "or chrome://tracing)")
        return 0

    from repro.common.rng import derive_rng
    from repro.trace.fileio import save_trace
    from repro.trace.generator import bundles_for_instructions, generate_trace
    from repro.trace.synthetic import derive_params

    profile = get_profile(args.app)
    params = derive_params(profile, baseline_config())
    rng = derive_rng(args.seed, "trace", args.app)
    bundles = bundles_for_instructions(params, args.instructions)
    trace = generate_trace(params, bundles, rng)
    save_trace(args.output, trace, params=params,
               extra={"app": args.app, "seed": args.seed})
    print(f"wrote {len(trace)} records (~{args.instructions} instructions) "
          f"for {args.app} to {args.output}")
    return 0


def _parse_workloads(text: str) -> tuple[int, ...]:
    """Parse the ``--workloads`` comma list (e.g. ``1,2,5``)."""
    try:
        numbers = tuple(int(part) for part in text.split(",") if part.strip())
    except ValueError:
        raise argparse.ArgumentTypeError(f"bad workload list {text!r}") from None
    if not numbers:
        raise argparse.ArgumentTypeError("workload list is empty")
    return numbers


def _cmd_sweep(args) -> int:
    from repro.jobs.scheduler import matrix_jobs, run_jobs
    from repro.sim.metrics import MatrixResult
    from repro.sim.store import save_matrix

    config = baseline_config()
    all_workloads = make_workloads(num_cores=config.num_cores, seed=args.seed)
    numbers = args.workloads or tuple(range(1, len(all_workloads) + 1))
    for number in numbers:
        if not (1 <= number <= len(all_workloads)):
            print(f"error: workload must be 1..{len(all_workloads)}",
                  file=sys.stderr)
            return 2
    workloads = [all_workloads[number - 1] for number in numbers]
    schemes = tuple(args.schemes)

    # Always carry a Telemetry handle so the engine's ``jobs.*``
    # accounting (cache hits, executions, resumes) can be reported.
    telemetry = _make_telemetry(args) or Telemetry()

    def _narrate(job) -> None:
        print(f"  {job.spec.workload} / {job.spec.scheme} ...", file=sys.stderr)

    from repro.obs.progress import tee_observers

    jobs = matrix_jobs(workloads, schemes, config,
                       seed=args.seed, n_instructions=args.instructions)
    observer = _make_progress(args, total=len(jobs))
    monitor, server = _start_monitor(
        args, len(jobs), label=args.label, registry=telemetry.registry,
    )
    if observer is not None and server is not None:
        observer.serving = server.port
    try:
        results, report = run_jobs(
            jobs,
            max_workers=args.jobs,
            cache=args.cache_dir,
            journal=args.journal,
            resume=args.resume,
            retries=args.retries,
            stage1_store=args.stage1_cache,
            telemetry=telemetry,
            # The live status line owns stderr; per-cell narration yields.
            progress=None if observer is not None else _narrate,
            observer=tee_observers(
                observer, monitor.observe if monitor is not None else None,
            ),
            ledger=args.ledger,
            job_timeout_s=args.job_timeout,
            keep_going=args.keep_going,
            quarantine=args.quarantine,
            chaos=args.chaos,
            spans=args.spans,
        )
        if monitor is not None:
            monitor.finish()
    finally:
        if server is not None:
            server.stop()
    if observer is not None:
        observer.close()
    matrix = MatrixResult(
        label=args.label,
        schemes=schemes,
        workloads=tuple(wl.name for wl in workloads),
    )
    for result in results:
        matrix.add(result)

    rows = []
    for result in results:
        rows.append((
            result.workload,
            result.scheme + (" [FAILED]" if result.failed else ""),
            result.ipc, result.min_lifetime,
            result.wear_cov,
            result.llc_fetch_hit_rate,
        ))
    print(format_table(
        ["workload", "scheme", "IPC", "min life [y]", "wear CV", "LLC hit"],
        rows,
    ))
    print(f"\n{report.summary()}")
    accounting = telemetry.registry.subtree("jobs")
    if accounting:
        print("engine accounting:")
        for name, value in accounting.items():
            print(f"  {name} = {int(value)}")
    if args.out:
        save_matrix(args.out, matrix)
        print(f"\nwrote matrix to {args.out}")
    if args.trace_out and telemetry.trace is not None:
        traced = telemetry.trace.export_jsonl(args.trace_out)
        print(f"\nwrote {traced} events to {args.trace_out}")
    if args.profile:
        print("\n" + telemetry.profiler.report())
    if report.failed:
        where = f" (quarantine: {args.quarantine})" if args.quarantine else ""
        print(
            f"warning: {report.failed} cell(s) FAILED and were "
            f"quarantined{where}; their matrix cells are zeroed "
            "placeholders",
            file=sys.stderr,
        )
        return 3
    return 0


def _parse_ages(text: str) -> tuple[float, ...]:
    """Parse the ``--ages`` comma list (e.g. ``0.5,0.9,1.1``)."""
    try:
        ages = tuple(float(part) for part in text.split(",") if part.strip())
    except ValueError:
        raise argparse.ArgumentTypeError(f"bad age list {text!r}") from None
    if not ages:
        raise argparse.ArgumentTypeError("age list is empty")
    return ages


def _parse_bank_failure(text: str) -> tuple[int, float]:
    """Parse one ``--fail-bank`` entry: ``BANK`` or ``BANK:AGE``."""
    bank, _, age = text.partition(":")
    try:
        return int(bank), float(age) if age else 0.0
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"bad bank failure {text!r} (expected BANK or BANK:AGE)"
        ) from None


def _parse_budgets(text: str) -> tuple[int, ...]:
    """Parse the ``--budget-schedule`` comma list (e.g. ``2000,8000``)."""
    try:
        budgets = tuple(int(part) for part in text.split(",") if part.strip())
    except ValueError:
        raise argparse.ArgumentTypeError(f"bad budget list {text!r}") from None
    if not budgets:
        raise argparse.ArgumentTypeError("budget list is empty")
    return budgets


def _cmd_search(args) -> int:
    import json as _json
    from pathlib import Path

    from repro.obs.progress import tee_observers
    from repro.search import load_space, preset_space, run_search
    from repro.sim.store import atomic_write_text

    # ``--space`` is a JSON file when it looks like one, else a preset.
    if args.space.endswith(".json") or Path(args.space).exists():
        space = load_space(args.space)
    else:
        space = preset_space(args.space)

    workload_numbers = args.workloads or (1,)
    telemetry = _make_telemetry(args) or Telemetry()

    # Upper-bound job estimate for the progress line and monitor (the
    # halving driver prunes, and resume skips, so this is a ceiling).
    rungs = len(args.budget_schedule) if args.driver == "halving" else 1
    estimate, per_rung = 0, args.points
    for _ in range(rungs):
        estimate += per_rung * len(workload_numbers)
        per_rung = max(1, int(per_rung * args.promote))
    estimate += len(workload_numbers)  # the Re-NUCA reference point

    observer = _make_progress(args, total=estimate)
    monitor, server = _start_monitor(
        args, estimate, label=args.label, registry=telemetry.registry,
    )
    if observer is not None and server is not None:
        observer.serving = server.port
    try:
        outcome = run_search(
            space,
            driver=args.driver,
            sampler=args.sampler,
            n_points=args.points,
            budget_schedule=args.budget_schedule,
            objectives=tuple(args.objectives),
            workload_numbers=workload_numbers,
            seed=args.seed,
            promote=args.promote,
            max_workers=args.jobs,
            cache=args.cache_dir,
            journal=args.journal,
            resume=args.resume,
            retries=args.retries,
            stage1_store=args.stage1_cache,
            telemetry=telemetry,
            observer=tee_observers(
                observer, monitor.observe if monitor is not None else None,
            ),
            ledger=args.ledger,
            job_timeout_s=args.job_timeout,
            spans=args.spans,
        )
        if monitor is not None:
            monitor.finish()
    finally:
        if server is not None:
            server.stop()
    if observer is not None:
        observer.close()

    final = outcome.final_evaluations()
    front_ids = {e.point_id for e in outcome.frontier}
    rows = []
    for e in sorted(final, key=lambda e: (e.point_id not in front_ids,
                                          e.point_id)):
        rows.append((
            ("*" if e.point_id in front_ids else " ") + " " + e.point_id,
            "Re-NUCA default" if e.reference else e.scheme,
            e.metrics["ipc"], e.metrics["lifetime"],
            e.metrics["energy"], e.metrics["wear_cov"],
        ))
    print(format_table(
        ["point (* = frontier)", "scheme", "IPC", "min life [y]",
         "energy [mJ]", "wear CoV"],
        rows,
    ))
    print(f"\nfrontier: {len(outcome.frontier)} of {len(final)} full-budget "
          f"points; hypervolume {outcome.hypervolume:.6g} over "
          f"({', '.join(outcome.objectives)})")
    print("search accounting:")
    for name, value in sorted(outcome.report.items()):
        print(f"  {name} = {value}")
    if args.out:
        atomic_write_text(args.out, _json.dumps(outcome.to_dict(), indent=1))
        print(f"\nwrote search outcome to {args.out}")
    if args.html:
        from repro.obs.html_report import render_search_report

        atomic_write_text(args.html, render_search_report(
            outcome,
            title=f"Re-NUCA design-space search: {args.label}",
        ))
        print(f"wrote Pareto report to {args.html}")
    if args.profile:
        print("\n" + telemetry.profiler.report())
    return 0


def _cmd_endoflife(args) -> int:
    from repro.experiments.endoflife import (
        DEFAULT_SCHEMES,
        render_endoflife,
        run_endoflife,
    )

    telemetry = _make_telemetry(args)
    # The sweep shares one Telemetry handle; the event ring is flushed to
    # the JSONL file per (scheme, age) cell — `progress` fires just
    # before each cell, so flushing there stamps the right cell labels.
    state = {"cell": None, "events": 0, "flushed": False}

    def _flush() -> None:
        scheme, age = state["cell"]
        state["events"] += telemetry.trace.export_jsonl(
            args.trace_out, append=state["flushed"],
            extra={"scheme": scheme, "age": age},
        )
        state["flushed"] = True
        telemetry.trace.clear()

    def _progress(scheme: str, age: float) -> None:
        if observer is None:
            print(f"  running {scheme} at age {age:.2f} ...", file=sys.stderr)
        if args.jobs == 1 and telemetry is not None and telemetry.trace is not None:
            if state["cell"] is not None:
                _flush()
            state["cell"] = (scheme, age)

    from repro.obs.progress import tee_observers

    ages = tuple(sorted(set(args.ages)))
    swept_ages = (0.0, *[a for a in ages if a > 0])
    schemes = tuple(args.schemes or DEFAULT_SCHEMES)
    total = len(schemes) * len(swept_ages)
    observer = _make_progress(args, total=total)
    monitor, server = _start_monitor(
        args, total, label=f"endoflife WL{args.workload}",
        registry=telemetry.registry if telemetry is not None else None,
    )
    if observer is not None and server is not None:
        observer.serving = server.port
    try:
        curves = run_endoflife(
            workload_number=args.workload,
            ages=swept_ages,
            schemes=schemes,
            seed=args.seed,
            n_instructions=args.instructions,
            stage1_store=args.stage1_cache,
            bank_failures=tuple(args.fail_bank),
            transient_rate=args.transient_rate,
            progress=_progress,
            telemetry=telemetry,
            max_workers=args.jobs,
            observer=tee_observers(
                observer, monitor.observe if monitor is not None else None,
            ),
            ledger=args.ledger,
            retries=args.retries,
            job_timeout_s=args.job_timeout,
            spans=args.spans,
        )
        if monitor is not None:
            monitor.finish()
    finally:
        if server is not None:
            server.stop()
    if observer is not None:
        observer.close()
    if state["cell"] is not None:
        _flush()
    elif args.jobs > 1 and telemetry is not None and telemetry.trace is not None:
        # Parallel cells merge back stamped with scheme/age; one export.
        state["events"] = telemetry.trace.export_jsonl(args.trace_out)
    print(render_endoflife(curves))
    if args.trace_out:
        print(f"\nwrote {state['events']} events to {args.trace_out}")
    if args.profile:
        print("\n" + telemetry.profiler.report())
    return 0


def _cmd_stats(args) -> int:
    from repro.experiments.ascii_plot import interval_heatmap

    if args.from_spans:
        from repro.obs.spans import load_spans, phase_wall_table

        spans = load_spans(args.from_spans)
        rows = phase_wall_table(spans)
        if not rows:
            print(f"no phase spans in {args.from_spans}")
            return 0
        print(f"phase wall time over {len(spans)} spans "
              f"({args.from_spans}):")
        print(format_table(
            ["phase", "calls", "total [s]", "mean [s]"],
            [(name, calls, f"{total:.3f}", f"{mean:.4f}")
             for name, calls, total, mean in rows],
        ))
        return 0

    config = baseline_config()
    workloads = make_workloads(num_cores=config.num_cores, seed=args.seed)
    index = args.workload - 1
    if not (0 <= index < len(workloads)):
        print(f"error: workload must be 1..{len(workloads)}", file=sys.stderr)
        return 2
    workload = workloads[index]
    print(f"{workload.name}: {', '.join(workload.apps)}")
    stage1 = Stage1Cache(store=args.stage1_cache)
    covs: dict[str, float] = {}
    traced = 0
    for number, scheme in enumerate(args.schemes):
        # One handle per scheme keeps each counter/interval series
        # isolated; the JSONL file is shared, with the scheme stamped
        # onto each record.
        telemetry = Telemetry(
            trace=bool(args.trace_out),
            interval_instructions=args.interval,
            profile=args.profile,
        )
        result = run_workload(
            workload, scheme, config, seed=args.seed,
            n_instructions=args.instructions, stage1=stage1,
            telemetry=telemetry, ledger=args.ledger,
        )
        if telemetry.trace is not None:
            traced += telemetry.trace.export_jsonl(
                args.trace_out, append=number > 0, extra={"scheme": scheme},
            )
        print(f"\n=== {scheme} ===")
        print(telemetry.registry.render())
        series = result.intervals
        if series is None or len(series) == 0:
            # Interval dumps were disabled (--interval 0) or the run was
            # too short to cross a single interval boundary: fall back
            # to the registry-only view rather than erroring out.
            print("\n(no interval series recorded; registry-only view. "
                  "Pass --interval N>0 to sample the run over time.)")
        else:
            matrix = series.bank_write_matrix()
            if matrix.size:
                banks = matrix.shape[1]
                rows = [
                    (i + 1, series.instructions[i], series.accesses[i],
                     *(int(v) for v in matrix[i]))
                    for i in range(matrix.shape[0])
                ]
                print("\nper-interval per-bank LLC writes "
                      f"(every ~{series.interval_instructions} instructions):")
                print(format_table(
                    ["#", "instrs", "accesses",
                     *[f"b{b}" for b in range(banks)]],
                    rows,
                ))
                print()
                print(interval_heatmap(
                    matrix.T,
                    title=f"{scheme}: per-bank writes over intervals "
                          "(shade = relative write pressure)",
                ))
        covs[scheme] = result.wear_cov
        if args.profile:
            print("\n" + telemetry.profiler.report())
    print("\nper-bank write CoV (lower = more even wear):")
    for scheme, cov in covs.items():
        print(f"  {scheme:>8s}  {cov:.3f}")
    if args.trace_out:
        print(f"\nwrote {traced} events to {args.trace_out}")
    return 0


def _cmd_diff(args) -> int:
    from repro.obs.diff import (
        diff_metric_maps,
        load_comparable,
        load_rules,
        render_findings,
    )

    rules = load_rules(args.tolerances) if args.tolerances else None
    baseline = load_comparable(args.baseline)
    current = load_comparable(args.current)
    findings = diff_metric_maps(baseline, current, rules)
    print(render_findings(findings, verbose=args.verbose))
    return 1 if any(not finding.ok for finding in findings) else 0


def _cmd_report(args) -> int:
    from repro.obs.html_report import render_html_report
    from repro.obs.ledger import RunLedger
    from repro.sim.store import atomic_write_text, load_matrix

    matrix = load_matrix(args.matrix)
    records = RunLedger(args.ledger).load() if args.ledger else None
    html = render_html_report(
        matrix,
        ledger_records=records,
        title=args.title or f"Re-NUCA report: {matrix.label}",
    )
    atomic_write_text(args.html, html)
    print(f"wrote report for {len(matrix.results)} cells"
          + (f" and {len(records)} ledger records" if records else "")
          + f" to {args.html}")
    return 0


def _cmd_top(args) -> int:
    from repro.obs.top import run_top

    return run_top(
        url=args.url,
        journal=args.journal,
        spans=args.spans,
        total=args.total,
        interval_s=args.interval,
        once=args.once,
    )


def _cmd_bench_record(args) -> int:
    from repro.obs.bench import (
        append_bench_point,
        bench_point,
        search_bench_point,
    )
    from repro.obs.ledger import RunLedger
    from repro.sim.store import load_matrix

    if args.search:
        import json as _json
        from pathlib import Path

        from repro.search.drivers import SearchOutcome

        try:
            payload = _json.loads(Path(args.search).read_text(encoding="utf-8"))
        except (OSError, _json.JSONDecodeError) as exc:
            raise ReproError(f"cannot read {args.search}: {exc}") from exc
        outcome = SearchOutcome.from_dict(payload)
        point = search_bench_point(outcome, label=args.label)
        count = append_bench_point(args.out, point)
        print(f"recorded point #{count} ({point['label']}) in {args.out}")
        return 0
    if not args.matrix:
        print("error: need --matrix or --search", file=sys.stderr)
        return 2
    matrix = load_matrix(args.matrix)
    wall_time_s = None
    if args.ledger:
        records = RunLedger(args.ledger).load()
        if records:
            wall_time_s = sum(record.wall_time_s for record in records)
    point = bench_point(matrix, label=args.label, wall_time_s=wall_time_s)
    count = append_bench_point(args.out, point)
    print(f"recorded point #{count} ({point['label']}) in {args.out}")
    return 0


def _cmd_history(args) -> int:
    from repro.obs.diff import load_rules
    from repro.obs.history import RunIndex
    from repro.obs.trajectory import (
        gate_trajectories,
        metric_trajectories,
        render_trajectory_findings,
    )

    if args.ledger or args.bench or args.search:
        from pathlib import Path

        index = RunIndex()
        # An explicitly named artefact must exist: the loaders tolerate
        # missing files (append-first contract), but a typo'd --bench
        # silently gating nothing would defeat the check.
        for flag, paths, add in (
            ("--ledger", args.ledger, index.add_ledger),
            ("--bench", args.bench, index.add_bench),
            ("--search", args.search, index.add_search),
        ):
            for path in paths or ():
                if not Path(path).is_file():
                    raise ReproError(f"{flag} {path}: no such file")
                add(path)
    else:
        index = RunIndex.scan(args.dir, cache=args.scan_cache)
    for warning in index.warnings:
        print(f"warning: {warning}", file=sys.stderr)
    rules = load_rules(args.tolerances) if args.tolerances else None

    if args.html:
        from repro.obs.html_report import render_history_report
        from repro.sim.store import atomic_write_text

        atomic_write_text(args.html, render_history_report(
            index, last=args.last, rules=rules,
            window=args.window, sustain=args.sustain,
        ))
        print(f"wrote history report ({len(index.records)} runs, "
              f"{len(index.bench_points)} bench points, "
              f"{len(index.searches)} searches) to {args.html}")

    series = metric_trajectories(index)
    if args.action == "check":
        findings = gate_trajectories(
            series, rules, window=args.window, sustain=args.sustain,
        )
        print(render_trajectory_findings(findings, series))
        return 1 if findings else 0

    commits = index.commits()
    print(f"{len(index.records)} ledger runs, "
          f"{len(index.bench_points)} bench points, "
          f"{len(index.searches)} search outcomes "
          f"across {len(commits)} commit(s) "
          f"({len(index.sources)} files indexed)")
    searches = index.searches_by_age()
    if searches:
        print("\nsearch outcomes (oldest first):")
        print(format_table(
            ["commit", "driver", "frontier", "hypervolume", "file"],
            [
                ((s.git_sha or "untracked")[:10], s.outcome.driver,
                 len(s.outcome.frontier), f"{s.outcome.hypervolume:.6g}",
                 s.path)
                for s in searches
            ],
        ))
    if series:
        print("\ntrajectory series:")
        print(format_table(
            ["source", "scheme", "metric", "samples", "first", "last"],
            [
                (source, scheme, metric, len(points),
                 f"{points[0].value:.4f}", f"{points[-1].value:.4f}")
                for (source, scheme, metric), points in sorted(series.items())
            ],
        ))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Re-NUCA (IPDPS 2016) reproduction toolkit",
    )
    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {_package_version()}")
    # Not `required`: a bare ``repro`` prints the full help (exit 2, see
    # :func:`main`) instead of argparse's two-line usage error.
    sub = parser.add_subparsers(dest="command")

    sub.add_parser("config", help="print the Table I configuration")

    p_table2 = sub.add_parser("table2", help="characterise applications")
    p_table2.add_argument("apps", nargs="*",
                          help="apps to run (default: all 22)")
    _add_common(p_table2)

    p_compare = sub.add_parser("compare", help="run one workload under schemes")
    p_compare.add_argument("--workload", type=int, default=1,
                           help="workload number 1..10 (default 1)")
    p_compare.add_argument("--schemes", nargs="+",
                           default=["S-NUCA", "R-NUCA", "Re-NUCA"],
                           help="NUCA schemes to compare")
    _add_common(p_compare)
    _add_telemetry(p_compare)
    _add_jobs(p_compare)
    _add_stage1(p_compare)
    _add_ledger(p_compare)
    _add_monitor(p_compare)

    p_sweep = sub.add_parser(
        "sweep",
        help="run a workloads x schemes grid through the sweep engine",
    )
    p_sweep.add_argument("--workloads", type=_parse_workloads, default=None,
                         metavar="N,N,...",
                         help="comma list of workload numbers (default: all)")
    p_sweep.add_argument("--schemes", nargs="+",
                         default=["S-NUCA", "R-NUCA", "Re-NUCA"],
                         help="NUCA schemes to sweep")
    p_sweep.add_argument("--cache-dir", metavar="DIR", default=None,
                         help="content-addressed result cache directory; "
                              "unchanged cells are served without simulating")
    p_sweep.add_argument("--journal", metavar="FILE", default=None,
                         help="append-only completion journal (JSONL)")
    p_sweep.add_argument("--resume", action="store_true",
                         help="replay cells already recorded in --journal")
    p_sweep.add_argument("--out", metavar="FILE", default=None,
                         help="save the result matrix as JSON")
    p_sweep.add_argument("--label", default="sweep",
                         help="label stored in the result matrix")
    p_sweep.add_argument("--keep-going", action="store_true",
                         help="quarantine poison cells (crash/timeout/retry "
                              "exhaustion) as FAILED placeholders and finish "
                              "the sweep; exit status 3 when any cell failed")
    p_sweep.add_argument("--quarantine", metavar="FILE", default=None,
                         help="append-only quarantine journal (JSONL) "
                              "receiving one record per poisoned cell")
    p_sweep.add_argument("--chaos", metavar="SPEC", default=None,
                         help="chaos-injection rules for resilience testing, "
                              "e.g. 'mixA/*@0=kill;mixB/S-NUCA@*=hang:30' "
                              "(see docs/RESILIENCE.md)")
    _add_common(p_sweep)
    _add_telemetry(p_sweep)
    _add_jobs(p_sweep)
    _add_stage1(p_sweep)
    _add_ledger(p_sweep)
    _add_monitor(p_sweep)

    p_search = sub.add_parser(
        "search",
        help="design-space exploration: multi-fidelity search over "
             "NUCA/ReRAM configurations with a Pareto frontier "
             "(see docs/SEARCH.md)",
    )
    p_search.add_argument("--space", default="nuca", metavar="FILE|PRESET",
                          help="search-space JSON file or preset name "
                               "('nuca', 'schemes'; default nuca)")
    p_search.add_argument("--driver", default="halving",
                          choices=["halving", "random", "grid"],
                          help="search driver (default halving = "
                               "successive halving over the budget "
                               "schedule)")
    p_search.add_argument("--sampler", default="halton",
                          choices=["halton", "random", "grid"],
                          help="candidate sampler (default halton "
                               "low-discrepancy)")
    p_search.add_argument("--points", type=int, default=16, metavar="N",
                          help="candidate points to propose (default 16)")
    p_search.add_argument("--budget-schedule", type=_parse_budgets,
                          default=(2000, 8000), metavar="N,N,...",
                          help="instruction budgets per rung, ascending "
                               "fidelity (default 2000,8000; non-halving "
                               "drivers use only the last)")
    p_search.add_argument("--objectives", nargs="+",
                          default=["ipc", "lifetime", "energy"],
                          help="objectives to optimise: ipc, lifetime "
                               "(maximised), energy, wear_cov (minimised)")
    p_search.add_argument("--workloads", type=_parse_workloads, default=None,
                          metavar="N,N,...",
                          help="comma list of workload numbers evaluated "
                               "per point (default: 1)")
    p_search.add_argument("--promote", type=float, default=0.5,
                          metavar="FRACTION",
                          help="fraction of points promoted per rung "
                               "(default 0.5)")
    p_search.add_argument("--cache-dir", metavar="DIR", default=None,
                          help="content-addressed result cache directory "
                               "shared with 'repro sweep'")
    p_search.add_argument("--journal", metavar="FILE", default=None,
                          help="search journal (JSONL; rung sweep journals "
                               "are derived next to it)")
    p_search.add_argument("--resume", action="store_true",
                          help="replay evaluations recorded in --journal "
                               "and re-simulate only the remainder")
    p_search.add_argument("--out", metavar="FILE", default=None,
                          help="save the search outcome as JSON")
    p_search.add_argument("--html", metavar="FILE", default=None,
                          help="write a self-contained Pareto scatter "
                               "report (IPC vs lifetime)")
    p_search.add_argument("--label", default="search",
                          help="label for the monitor and report title")
    _add_common(p_search)
    _add_telemetry(p_search)
    _add_jobs(p_search)
    _add_stage1(p_search)
    _add_ledger(p_search)
    _add_monitor(p_search)

    p_stats = sub.add_parser(
        "stats",
        help="telemetry deep-dive: interval series and wear heatmap",
    )
    p_stats.add_argument("--workload", type=int, default=1,
                         help="workload number 1..10 (default 1)")
    p_stats.add_argument("--schemes", nargs="+",
                         default=["S-NUCA", "R-NUCA", "Re-NUCA"],
                         help="NUCA schemes to inspect")
    p_stats.add_argument("--interval", type=int, default=50_000,
                         help="interval-dump period in committed "
                              "instructions (default 50000)")
    p_stats.add_argument("--from-spans", metavar="FILE", default=None,
                         help="print a per-phase wall-time table from a "
                              "spans.jsonl file and exit (no simulation)")
    _add_common(p_stats)
    _add_telemetry(p_stats)
    _add_stage1(p_stats)
    _add_ledger(p_stats)

    p_wl = sub.add_parser("workloads", help="show the WL1..WL10 mixes")
    _add_common(p_wl)

    p_trace = sub.add_parser(
        "trace",
        help="generate a trace file, or export spans to Chrome/Perfetto "
             "('repro trace export OUT --spans spans.jsonl')",
    )
    p_trace.add_argument("app", help="Table II application name, or "
                                     "'export' for the Perfetto exporter")
    p_trace.add_argument("output", help="output path (.npz, or trace JSON "
                                        "for 'export')")
    p_trace.add_argument("--spans", metavar="FILE", default=None,
                         help="spans.jsonl to export (with 'export'; "
                              "default spans.jsonl)")
    _add_common(p_trace)

    p_top = sub.add_parser(
        "top",
        help="live dashboard for a running sweep (--serve endpoint) or a "
             "finished one (journal/span files)",
    )
    p_top.add_argument("--url", default=None,
                       help="monitor base URL (http://127.0.0.1:PORT from "
                            "a sweep's --serve)")
    p_top.add_argument("--journal", metavar="FILE", default=None,
                       help="sweep journal for offline reconstruction")
    p_top.add_argument("--spans", metavar="FILE", default=None,
                       help="spans.jsonl for offline reconstruction")
    p_top.add_argument("--total", type=int, default=None,
                       help="expected cell count (offline mode hint)")
    p_top.add_argument("--interval", type=float, default=1.0,
                       metavar="SECONDS",
                       help="poll/repaint period (default 1.0)")
    p_top.add_argument("--once", action="store_true",
                       help="render one frame without ANSI repaint codes "
                            "(CI logs)")

    p_eol = sub.add_parser(
        "endoflife",
        help="sweep cache age under end-of-life fault injection",
    )
    p_eol.add_argument("--workload", type=int, default=1,
                       help="workload number 1..10 (default 1)")
    p_eol.add_argument("--ages", type=_parse_ages, default=(0.5, 0.9, 1.1),
                       help="comma list of endurance fractions "
                            "(default 0.5,0.9,1.1; 0.0 baseline always runs)")
    p_eol.add_argument("--schemes", nargs="+", default=None,
                       help="NUCA schemes (default S-NUCA R-NUCA Re-NUCA)")
    p_eol.add_argument("--fail-bank", type=_parse_bank_failure, action="append",
                       default=[], metavar="BANK[:AGE]",
                       help="schedule a whole-bank failure (repeatable); "
                            "AGE defaults to 0 (dead at every swept age)")
    p_eol.add_argument("--transient-rate", type=float, default=0.0,
                       help="per-read soft-fault probability (default 0)")
    _add_common(p_eol)
    _add_telemetry(p_eol)
    _add_jobs(p_eol)
    _add_stage1(p_eol)
    _add_ledger(p_eol)
    _add_monitor(p_eol)

    p_diff = sub.add_parser(
        "diff",
        help="regression gate: compare two result sets under tolerances",
    )
    p_diff.add_argument("baseline",
                        help="baseline matrix JSON or run-ledger JSONL")
    p_diff.add_argument("current",
                        help="current matrix JSON or run-ledger JSONL")
    p_diff.add_argument("--tolerances", metavar="FILE", default=None,
                        help="tolerance-rule JSON (default: built-in rules; "
                             "see baselines/tolerances.json)")
    p_diff.add_argument("--verbose", "-v", action="store_true",
                        help="also list comparisons that passed")

    p_report = sub.add_parser(
        "report",
        help="render a result matrix as one self-contained HTML file",
    )
    p_report.add_argument("--matrix", metavar="FILE", required=True,
                          help="saved result matrix (repro sweep --out)")
    p_report.add_argument("--html", metavar="FILE", required=True,
                          help="output HTML path (single file, no "
                               "external references)")
    p_report.add_argument("--ledger", metavar="FILE", default=None,
                          help="run ledger for the history and profiler "
                               "sections")
    p_report.add_argument("--title", default=None, help="report title")

    p_bench = sub.add_parser(
        "bench-record",
        help="append a timing/IPC point to a BENCH_*.json trajectory",
    )
    p_bench.add_argument("--matrix", metavar="FILE", default=None,
                         help="saved result matrix to summarise")
    p_bench.add_argument("--search", metavar="FILE", default=None,
                         help="search outcome JSON (repro search --out); "
                              "records frontier size and hypervolume "
                              "instead of a matrix summary")
    p_bench.add_argument("--out", metavar="FILE", default="BENCH_sweep.json",
                         help="trajectory file (default BENCH_sweep.json)")
    p_bench.add_argument("--ledger", metavar="FILE", default=None,
                         help="run ledger; its wall times sum into the point")
    p_bench.add_argument("--label", default="",
                         help="point label (default: the matrix label)")

    p_history = sub.add_parser(
        "history",
        help="longitudinal history: cross-run index, frontier-evolution "
             "overlays and sliding-window trajectory gating",
    )
    p_history.add_argument("action", nargs="?", default="show",
                           choices=["show", "check"],
                           help="'show' prints the index summary; 'check' "
                                "gates metric trajectories and exits 1 on "
                                "sustained drift (default show)")
    p_history.add_argument("--dir", default=".", metavar="DIR",
                           help="directory tree to scan for ledgers, "
                                "BENCH_*.json files and search outcomes "
                                "(default: . ; ignored when explicit "
                                "--ledger/--bench/--search are given)")
    p_history.add_argument("--ledger", metavar="FILE", action="append",
                           default=None,
                           help="run-ledger JSONL to index (repeatable)")
    p_history.add_argument("--bench", metavar="FILE", action="append",
                           default=None,
                           help="BENCH_*.json trajectory to index "
                                "(repeatable)")
    p_history.add_argument("--search", metavar="FILE", action="append",
                           default=None,
                           help="search outcome JSON to index (repeatable)")
    p_history.add_argument("--scan-cache", metavar="FILE", default=None,
                           help="on-disk scan cache keyed by file "
                                "mtime/size; rescans of large history "
                                "trees re-read only changed files")
    p_history.add_argument("--html", metavar="FILE", default=None,
                           help="write the self-contained timeline report "
                                "(frontier overlays, sparklines, run index)")
    p_history.add_argument("--last", type=int, default=5, metavar="K",
                           help="search frontiers overlaid in the report "
                                "(default 5)")
    p_history.add_argument("--tolerances", metavar="FILE", default=None,
                           help="tolerance-rule JSON for the gate (default: "
                                "built-in rules; see "
                                "baselines/tolerances.json)")
    p_history.add_argument("--window", type=int, default=3, metavar="N",
                           help="sliding window: samples in the "
                                "rolling-median baseline (default 3)")
    p_history.add_argument("--sustain", type=int, default=1, metavar="N",
                           help="consecutive out-of-tolerance samples "
                                "required before a finding fires "
                                "(default 1)")

    return parser


_COMMANDS = {
    "config": _cmd_config,
    "table2": _cmd_table2,
    "compare": _cmd_compare,
    "sweep": _cmd_sweep,
    "search": _cmd_search,
    "stats": _cmd_stats,
    "workloads": _cmd_workloads,
    "trace": _cmd_trace,
    "endoflife": _cmd_endoflife,
    "diff": _cmd_diff,
    "report": _cmd_report,
    "bench-record": _cmd_bench_record,
    "history": _cmd_history,
    "top": _cmd_top,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code.

    Library errors (:class:`~repro.common.errors.ReproError` subclasses:
    unknown apps, malformed traces, bad configurations) are reported as a
    one-line ``error: ...`` on stderr with exit status 2 — they are user
    mistakes, not crashes.  A gracefully cancelled sweep
    (:class:`~repro.common.errors.SweepCancelled`) exits 130 with its
    resume hint.  Anything else propagates with a traceback.

    Run without a subcommand, prints the full help and exits 2 — the
    same status argparse uses for usage errors.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help(sys.stderr)
        return 2
    try:
        return _COMMANDS[args.command](args)
    except SweepCancelled as exc:
        # A gracefully drained interrupt: completed cells are journaled
        # and ledgered; 130 is the conventional SIGINT exit status.
        print(f"interrupted: {exc}", file=sys.stderr)
        return 130
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
