"""The parallel sweep engine: job specs, scheduling, caching, resume.

Paper-scale experiments are grids of independent (workload, scheme)
simulations; this package turns each cell into a schedulable, cacheable,
resumable job:

* :mod:`repro.jobs.spec` — :class:`JobSpec`, the frozen JSON-serialisable
  identity of one cell with a stable content-hash ``fingerprint()``;
* :mod:`repro.jobs.cache` — :class:`ResultCache`, an on-disk
  content-addressed store mapping fingerprints to results;
* :mod:`repro.jobs.journal` — :class:`SweepJournal`, an append-only JSONL
  record of completed cells enabling ``--resume``;
* :mod:`repro.jobs.scheduler` — :func:`run_jobs`, the process-pool
  scheduler with per-job retry and a deterministic merge.

High-level entry points (:func:`repro.sim.runner.run_matrix`, the
``repro sweep`` CLI command) wire these together; see ``docs/SWEEPS.md``
for the job model, cache-key contents, invalidation rules and the
determinism guarantee.
"""

from repro.jobs.cache import CACHE_FORMAT_VERSION, ResultCache
from repro.jobs.journal import JOURNAL_FORMAT_VERSION, SweepJournal
from repro.jobs.scheduler import (
    DEFAULT_RETRIES,
    SweepJob,
    SweepReport,
    matrix_jobs,
    run_jobs,
)
from repro.jobs.spec import SPEC_FORMAT_VERSION, JobSpec

__all__ = [
    "CACHE_FORMAT_VERSION",
    "ResultCache",
    "JOURNAL_FORMAT_VERSION",
    "SweepJournal",
    "DEFAULT_RETRIES",
    "SweepJob",
    "SweepReport",
    "matrix_jobs",
    "run_jobs",
    "JobSpec",
    "SPEC_FORMAT_VERSION",
]
