"""Append-only sweep journals: resume an interrupted grid where it died.

A :class:`SweepJournal` is a JSONL file with one record per *completed*
job — fingerprint, human-readable labels and the full result payload
(the :mod:`repro.sim.store` layout).  Records are flushed and fsynced as
they are appended, so after a crash or a ^C the journal holds exactly
the finished cells; re-invoking the sweep with ``resume=True`` replays
those from the journal and executes only the remainder.

Robustness contract:

* a torn final record (the interrupted append) is detected and ignored;
* malformed records *before* the final one raise
  :class:`~repro.common.errors.ReproError` — the file was damaged by
  something other than an interrupted sweep, and silently skipping
  completed work would be worse than asking the user to look;
* records with an unknown ``v`` (format version) also raise, since
  their embedded results may not mean what the current engine thinks.

The journal is per-sweep bookkeeping; the cross-sweep store is the
content-addressed :class:`~repro.jobs.cache.ResultCache`.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.common.errors import ReproError
from repro.jobs.spec import JobSpec
from repro.sim.metrics import WorkloadSchemeResult
from repro.sim.store import result_from_dict, result_to_dict

#: Journal record layout version.
JOURNAL_FORMAT_VERSION = 1

#: Quarantine record layout version.
QUARANTINE_FORMAT_VERSION = 1

#: Why a job was quarantined.
QUARANTINE_KINDS = ("error", "crash", "timeout")


class SweepJournal:
    """Append-only JSONL record of completed sweep jobs."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._fh = None

    # -- reading -------------------------------------------------------------

    def load(self) -> dict[str, WorkloadSchemeResult]:
        """Completed results keyed by fingerprint (empty when no file).

        Raises:
            ReproError: for corruption other than a torn final record.
        """
        try:
            text = self.path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return {}
        except OSError as exc:
            raise ReproError(f"cannot read journal {self.path}: {exc}") from exc
        completed: dict[str, WorkloadSchemeResult] = {}
        lines = text.splitlines()
        for lineno, line in enumerate(lines, start=1):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                if lineno == len(lines):
                    # Torn final append from an interrupted sweep: the
                    # cell never finished journaling, so it reruns.
                    break
                raise ReproError(
                    f"{self.path}:{lineno}: malformed journal record: {exc}"
                ) from exc
            if not isinstance(record, dict):
                raise ReproError(
                    f"{self.path}:{lineno}: journal record is not an object"
                )
            if record.get("v") != JOURNAL_FORMAT_VERSION:
                raise ReproError(
                    f"{self.path}:{lineno}: unsupported journal format "
                    f"{record.get('v')!r} (expected {JOURNAL_FORMAT_VERSION})"
                )
            try:
                fingerprint = record["fingerprint"]
                result = result_from_dict(record["result"])
            except (KeyError, TypeError, ValueError) as exc:
                raise ReproError(
                    f"{self.path}:{lineno}: bad journal record: {exc}"
                ) from exc
            completed[fingerprint] = result
        return completed

    # -- writing -------------------------------------------------------------

    def open(self, *, truncate: bool = False) -> None:
        """Open the backing file for appending (creating it if needed).

        ``truncate=True`` starts a fresh journal — the scheduler does
        this for non-resume sweeps so stale records from an earlier run
        at the same path cannot leak into a later ``resume``.
        """
        if self._fh is not None:
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        try:
            self._fh = open(
                self.path, "w" if truncate else "a", encoding="utf-8"
            )
        except OSError as exc:
            raise ReproError(f"cannot open journal {self.path}: {exc}") from exc

    def record(self, spec: JobSpec, result: WorkloadSchemeResult) -> None:
        """Append one completed job (flushed and fsynced immediately)."""
        if self._fh is None:
            self.open()
        line = json.dumps({
            "v": JOURNAL_FORMAT_VERSION,
            "fingerprint": spec.fingerprint(),
            "workload": spec.workload,
            "scheme": spec.scheme,
            "result": result_to_dict(result),
        })
        self._fh.write(line + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def close(self) -> None:
        """Close the backing file (reopened automatically on ``record``)."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "SweepJournal":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


class QuarantineJournal:
    """Append-only JSONL record of poisoned sweep jobs.

    A *poison job* is one the resilience layer gave up on: it crashed
    the worker pool, exceeded its watchdog deadline, or exhausted its
    retries.  Under ``keep_going`` the scheduler records it here —
    fingerprint, label, failure kind (:data:`QUARANTINE_KINDS`),
    attempt count, the reason text and the full
    :meth:`spec payload <repro.jobs.spec.JobSpec.to_dict>` so the cell
    can be re-run in isolation — and continues with the rest of the
    sweep.  Quarantined cells are *not* journaled as completed, so a
    later ``--resume`` retries them.

    The file is append-only across runs (a quarantine is an incident
    log, not per-sweep bookkeeping) and shares :class:`SweepJournal`'s
    robustness contract: fsync per record, torn final line ignored on
    read, earlier corruption raises.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._fh = None

    # -- reading -------------------------------------------------------------

    def load(self) -> list[dict]:
        """All quarantine records in append order (empty when no file).

        Raises:
            ReproError: for corruption other than a torn final record.
        """
        try:
            text = self.path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return []
        except OSError as exc:
            raise ReproError(
                f"cannot read quarantine {self.path}: {exc}"
            ) from exc
        records: list[dict] = []
        lines = text.splitlines()
        for lineno, line in enumerate(lines, start=1):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                if lineno == len(lines):
                    # Torn final append: the record is lost, but losing
                    # an incident line never loses completed work.
                    break
                raise ReproError(
                    f"{self.path}:{lineno}: malformed quarantine record: "
                    f"{exc}"
                ) from exc
            if not isinstance(record, dict):
                raise ReproError(
                    f"{self.path}:{lineno}: quarantine record is not an "
                    "object"
                )
            if record.get("v") != QUARANTINE_FORMAT_VERSION:
                raise ReproError(
                    f"{self.path}:{lineno}: unsupported quarantine format "
                    f"{record.get('v')!r} "
                    f"(expected {QUARANTINE_FORMAT_VERSION})"
                )
            records.append(record)
        return records

    # -- writing -------------------------------------------------------------

    def open(self) -> None:
        """Open the backing file for appending (creating it if needed)."""
        if self._fh is not None:
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        try:
            self._fh = open(self.path, "a", encoding="utf-8")
        except OSError as exc:
            raise ReproError(
                f"cannot open quarantine {self.path}: {exc}"
            ) from exc

    def record(
        self, spec: JobSpec, *, kind: str, reason: str, attempts: int
    ) -> None:
        """Append one poisoned job (flushed and fsynced immediately)."""
        if kind not in QUARANTINE_KINDS:
            raise ReproError(
                f"quarantine kind must be one of {QUARANTINE_KINDS}, "
                f"got {kind!r}"
            )
        if self._fh is None:
            self.open()
        line = json.dumps({
            "v": QUARANTINE_FORMAT_VERSION,
            "fingerprint": spec.fingerprint(),
            "label": spec.label(),
            "workload": spec.workload,
            "scheme": spec.scheme,
            "kind": kind,
            "attempts": int(attempts),
            "reason": reason,
            "spec": spec.to_dict(),
        })
        self._fh.write(line + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def close(self) -> None:
        """Close the backing file (reopened automatically on ``record``)."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "QuarantineJournal":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
