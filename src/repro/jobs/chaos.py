"""Chaos injection for the sweep engine: break workers on purpose.

The resilience layer in :mod:`repro.jobs.scheduler` (crash recovery,
watchdog timeouts, retry backoff, quarantine) is only trustworthy if it
is exercised against *real* failures — a worker that actually dies with
SIGKILL, actually hangs past its deadline, actually corrupts a cache
entry.  A :class:`ChaosPlan` is a picklable set of rules that travels to
the workers inside the job payload and fires on chosen (job, attempt)
pairs:

* ``raise`` — raise :class:`ChaosError` (a transient failure: retried);
* ``hang``  — sleep for ``value`` seconds (default far past any
  deadline), so the parent's watchdog must kill the worker;
* ``kill``  — ``SIGKILL`` the worker process itself (the classic
  OOM-killer signature; breaks the whole pool);
* ``exit``  — ``os._exit(value)`` (default 137), a hard exit without
  cleanup — also breaks the pool;
* ``corrupt`` — parent-side: after the job completes, its result-cache
  entry is overwritten with garbage, which a later lookup must treat as
  a miss, not an error.

Rules match on the job's human label (``mixA/S-NUCA`` — see
:meth:`repro.jobs.spec.JobSpec.label`) with shell-style globs, and on
the zero-based attempt number, so a test can make exactly the first
attempt of one cell die and assert the retry heals it.

The CLI accepts the same rules as a compact spec string
(``--chaos 'mixA/*@0=kill;mixB/S-NUCA@*=raise'``), which is how the CI
chaos-smoke job drives a real sweep through crash, hang and poison
paths.  Everything here is deterministic: no randomness, no clocks in
the match logic — reruns inject exactly the same faults.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass
from fnmatch import fnmatchcase

from repro.common.errors import ReproError

#: Recognised rule actions.
ACTIONS = ("raise", "hang", "kill", "exit", "corrupt")

#: Default hang duration: far past any sane watchdog deadline.
DEFAULT_HANG_S = 3600.0

#: Default ``exit`` status: 128+SIGKILL, the OOM-kill convention.
DEFAULT_EXIT_CODE = 137


class ChaosError(RuntimeError):
    """The injected failure for ``raise`` rules.

    Deliberately *not* a :class:`~repro.common.errors.ReproError`: the
    scheduler treats it as transient and retries it, exactly like a
    real flaky infrastructure error.
    """


@dataclass(frozen=True)
class ChaosRule:
    """One injection: which cells, which attempts, what goes wrong."""

    #: Shell-style glob matched against the job label (``mixA/S-NUCA``).
    pattern: str
    #: Action from :data:`ACTIONS`.
    action: str
    #: Zero-based attempt numbers to fire on; ``None`` fires on all.
    attempts: tuple[int, ...] | None = None
    #: Action argument: hang seconds, or exit status.
    value: float = 0.0

    def __post_init__(self) -> None:
        if self.action not in ACTIONS:
            raise ReproError(
                f"unknown chaos action {self.action!r} "
                f"(expected one of {ACTIONS})"
            )

    def matches(self, label: str, attempt: int) -> bool:
        """True when this rule fires for (job label, attempt number)."""
        if self.attempts is not None and attempt not in self.attempts:
            return False
        return fnmatchcase(label, self.pattern)


@dataclass(frozen=True)
class ChaosPlan:
    """An ordered rule set; the first matching rule wins."""

    rules: tuple[ChaosRule, ...] = ()

    def __bool__(self) -> bool:
        return bool(self.rules)

    def rule_for(self, label: str, attempt: int) -> ChaosRule | None:
        """The first rule firing for this (label, attempt), if any."""
        for rule in self.rules:
            if rule.matches(label, attempt):
                return rule
        return None

    def apply(self, label: str, attempt: int) -> None:
        """Worker-side hook: execute the matching failure, if any.

        Called by the execution path just before the simulation runs.
        ``corrupt`` is a no-op here — it sabotages the *parent's* cache
        write after the job completes (see the scheduler).
        """
        rule = self.rule_for(label, attempt)
        if rule is None:
            return
        if rule.action == "raise":
            raise ChaosError(
                f"chaos: injected failure for {label} attempt {attempt}"
            )
        if rule.action == "hang":
            time.sleep(rule.value or DEFAULT_HANG_S)
            # A watchdog should have killed us long ago; if the parent
            # runs without one, surface the injection as a failure
            # rather than silently succeeding after the nap.
            raise ChaosError(
                f"chaos: hang elapsed for {label} attempt {attempt}"
            )
        if rule.action == "kill":
            os.kill(os.getpid(), signal.SIGKILL)
        if rule.action == "exit":
            os._exit(int(rule.value or DEFAULT_EXIT_CODE))

    # -- spec strings --------------------------------------------------------

    @classmethod
    def parse(cls, text: str) -> "ChaosPlan":
        """Build a plan from a compact spec string.

        Grammar: rules separated by ``;``, each
        ``PATTERN@ATTEMPTS=ACTION[:VALUE]`` where ``ATTEMPTS`` is ``*``
        or a comma-separated list of zero-based attempt numbers::

            mixA/S-NUCA@0=kill              SIGKILL the first attempt
            mix*/Re-NUCA@0,1=raise          fail the first two attempts
            mixB/S-NUCA@*=hang:30           hang every attempt for 30 s
            mixC/S-NUCA@*=raise;mixA/*@0=corrupt

        Raises:
            ReproError: for a malformed rule.
        """
        rules = []
        for part in text.split(";"):
            part = part.strip()
            if not part:
                continue
            rules.append(_parse_rule(part))
        if not rules:
            raise ReproError(f"chaos spec {text!r} contains no rules")
        return cls(rules=tuple(rules))


def _parse_rule(part: str) -> ChaosRule:
    head, sep, action_part = part.partition("=")
    if not sep:
        raise ReproError(
            f"bad chaos rule {part!r} (want PATTERN@ATTEMPTS=ACTION[:VALUE])"
        )
    pattern, sep, attempts_part = head.partition("@")
    if not sep or not pattern:
        raise ReproError(
            f"bad chaos rule {part!r} (want PATTERN@ATTEMPTS=ACTION[:VALUE])"
        )
    attempts: tuple[int, ...] | None
    attempts_part = attempts_part.strip()
    if attempts_part == "*":
        attempts = None
    else:
        try:
            attempts = tuple(
                int(a) for a in attempts_part.split(",") if a.strip() != ""
            )
        except ValueError as exc:
            raise ReproError(
                f"bad chaos rule {part!r}: attempts must be '*' or "
                f"comma-separated integers"
            ) from exc
        if not attempts or any(a < 0 for a in attempts):
            raise ReproError(
                f"bad chaos rule {part!r}: attempts must be '*' or "
                f"non-negative integers"
            )
    action, _, value_part = action_part.partition(":")
    action = action.strip()
    value = 0.0
    if value_part:
        try:
            value = float(value_part)
        except ValueError as exc:
            raise ReproError(
                f"bad chaos rule {part!r}: value {value_part!r} "
                "is not a number"
            ) from exc
    try:
        return ChaosRule(
            pattern=pattern.strip(), action=action,
            attempts=attempts, value=value,
        )
    except ReproError as exc:
        raise ReproError(f"bad chaos rule {part!r}: {exc}") from exc


def as_chaos(plan: "ChaosPlan | str | None") -> ChaosPlan | None:
    """Coerce a plan-or-spec-string argument (the scheduler contract)."""
    if plan is None or isinstance(plan, ChaosPlan):
        return plan
    return ChaosPlan.parse(plan)
