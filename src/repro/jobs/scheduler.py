"""The sweep scheduler: cache → journal → process pool → merge.

:func:`run_jobs` resolves a list of :class:`SweepJob` cells in three
tiers — journal replay (``resume=True``), content-addressed cache
lookup, then actual simulation — and executes the remainder either
in-process (``max_workers=1``, the exact legacy serial path: shared
:class:`~repro.sim.runner.Stage1Cache`, parent telemetry threaded
straight through) or on a ``ProcessPoolExecutor``.

Determinism guarantee: per-job randomness derives from
``(seed, workload, scheme)`` (see :mod:`repro.common.rng`), never from
scheduling, so a parallel sweep's results are field-for-field equal to
the serial ones and the output list always follows job-submission
order regardless of completion order.  Worker telemetry (registry
state + retained trace events) is merged into the parent handle in the
same deterministic job order.

Worker processes are reused across jobs and keep a process-global
:class:`~repro.sim.runner.Stage1Cache`, so a worker that executes
several cells of one workload pays its stage-1 cost once.  The pool
uses the ``fork`` start method where the platform offers it (cheap,
and inherits warmed module state); elsewhere it falls back to the
platform default, which only requires the ``repro`` package to be
importable in the child.
"""

from __future__ import annotations

import multiprocessing
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path

from repro.common.errors import ReproError
from repro.config import FaultConfig, SystemConfig
from repro.jobs.cache import ResultCache
from repro.jobs.journal import SweepJournal
from repro.jobs.spec import JobSpec
from repro.obs.ledger import RunLedger, RunRecord, as_ledger
from repro.obs.progress import JobEvent
from repro.sim.metrics import WorkloadSchemeResult
from repro.sim.runner import Stage1Cache, run_workload
from repro.telemetry import Telemetry
from repro.trace.workloads import Workload

#: Default per-job retry budget for transient failures.
DEFAULT_RETRIES = 1


@dataclass(frozen=True)
class SweepJob:
    """One schedulable cell: its identity plus the machine to run it on."""

    spec: JobSpec
    config: SystemConfig


@dataclass
class SweepReport:
    """How a sweep's cells were resolved (mirrors the ``jobs.*`` counters)."""

    total: int = 0
    executed: int = 0
    cache_hits: int = 0
    resumed: int = 0
    retries: int = 0

    def summary(self) -> str:
        """One-line human-readable accounting."""
        return (
            f"{self.total} jobs: {self.executed} executed, "
            f"{self.cache_hits} from cache, {self.resumed} resumed"
            + (f", {self.retries} retried" if self.retries else "")
        )


def matrix_jobs(
    workloads: list[Workload],
    schemes: tuple[str, ...],
    config: SystemConfig,
    *,
    seed: int | None,
    n_instructions: int,
    fault_config: FaultConfig | None = None,
) -> list[SweepJob]:
    """The grid's job list in canonical (workload-outer) order."""
    return [
        SweepJob(
            spec=JobSpec.for_run(
                workload, scheme, config,
                seed=seed, n_instructions=n_instructions,
                fault_config=fault_config,
            ),
            config=config,
        )
        for workload in workloads
        for scheme in schemes
    ]


# -- worker side -------------------------------------------------------------

#: Process-global stage-1 memo, shared by every job one worker executes.
_WORKER_STAGE1: Stage1Cache | None = None


@dataclass(frozen=True)
class _Payload:
    """Everything a worker needs to execute one job."""

    spec: JobSpec
    config: SystemConfig
    collect_telemetry: bool
    trace: bool
    trace_capacity: int
    interval_instructions: int
    profile: bool = False


@dataclass
class _Outcome:
    """A worker's answer: the result plus its telemetry to merge."""

    result: WorkloadSchemeResult
    registry_state: dict | None = None
    events: list = field(default_factory=list)
    profiler_state: list | None = None
    wall_time_s: float = 0.0


def _execute_payload(payload: _Payload) -> _Outcome:
    """Run one job inside a worker process (also usable in-process)."""
    global _WORKER_STAGE1
    if _WORKER_STAGE1 is None:
        _WORKER_STAGE1 = Stage1Cache()
    telemetry = None
    if payload.collect_telemetry:
        telemetry = Telemetry(
            trace=payload.trace,
            trace_capacity=payload.trace_capacity,
            interval_instructions=payload.interval_instructions,
            profile=payload.profile,
        )
    started = time.perf_counter()
    result = run_workload(
        payload.spec.to_workload(),
        payload.spec.scheme,
        payload.config,
        seed=payload.spec.seed,
        n_instructions=payload.spec.n_instructions,
        stage1=_WORKER_STAGE1,
        fault_config=payload.spec.fault,
        telemetry=telemetry,
    )
    wall_time_s = time.perf_counter() - started
    if telemetry is None:
        return _Outcome(result=result, wall_time_s=wall_time_s)
    return _Outcome(
        result=result,
        registry_state=telemetry.registry.export_state(),
        events=(
            telemetry.trace.events() if telemetry.trace is not None else []
        ),
        profiler_state=(
            telemetry.profiler.export_state()
            if telemetry.profiler.enabled else None
        ),
        wall_time_s=wall_time_s,
    )


# -- parent side -------------------------------------------------------------


def _as_cache(cache: ResultCache | str | Path | None) -> ResultCache | None:
    if cache is None or isinstance(cache, ResultCache):
        return cache
    return ResultCache(cache)


def _as_journal(
    journal: SweepJournal | str | Path | None,
) -> SweepJournal | None:
    if journal is None or isinstance(journal, SweepJournal):
        return journal
    return SweepJournal(journal)


def _merge_outcome(
    telemetry: Telemetry | None, job: SweepJob, outcome: _Outcome
) -> None:
    """Fold one worker's telemetry into the parent handle."""
    if telemetry is None:
        return
    if outcome.registry_state is not None:
        telemetry.registry.merge_state(outcome.registry_state)
    # Never merge into the shared DISABLED_PROFILER singleton: a parent
    # that did not ask for profiling drops the worker's phase totals.
    if telemetry.profiler.enabled and outcome.profiler_state:
        telemetry.profiler.merge_state(outcome.profiler_state)
    if telemetry.trace is not None and outcome.events:
        extra = {"workload": job.spec.workload, "scheme": job.spec.scheme}
        if job.spec.fault is not None:
            extra["age"] = job.spec.fault.age_fraction
        telemetry.trace.merge(outcome.events, extra=extra)


def run_jobs(
    jobs: list[SweepJob],
    *,
    max_workers: int = 1,
    cache: ResultCache | str | Path | None = None,
    journal: SweepJournal | str | Path | None = None,
    resume: bool = False,
    retries: int = DEFAULT_RETRIES,
    stage1: Stage1Cache | None = None,
    telemetry: Telemetry | None = None,
    progress=None,
    observer=None,
    ledger: RunLedger | str | Path | None = None,
) -> tuple[list[WorkloadSchemeResult], SweepReport]:
    """Resolve every job; returns results in job order plus a report.

    Args:
        jobs: the cells to resolve (duplicate fingerprints are an error).
        max_workers: 1 executes in-process — the exact serial path, with
            ``stage1`` shared across cells and ``telemetry`` threaded
            directly into the simulations; >1 fans out over a process
            pool with per-worker stage-1 caches and post-hoc telemetry
            merging.
        cache: a :class:`~repro.jobs.cache.ResultCache` (or its root
            directory) consulted before executing and updated after.
        journal: a :class:`~repro.jobs.journal.SweepJournal` (or its
            path) appended to as cells complete.  Without ``resume`` the
            journal restarts empty.
        resume: replay completed cells from the journal instead of
            rerunning them; requires ``journal``.
        retries: extra attempts per job after a transient (non-
            :class:`~repro.common.errors.ReproError`) failure.
        progress: optional ``(job: SweepJob) -> None`` narration hook,
            fired once per job as it is dispatched or served.
        observer: optional ``(event: JobEvent) -> None`` hook receiving
            the live event stream (``dispatch``/``done``/``cache``/
            ``resumed``/``retry``) — what
            :class:`~repro.obs.progress.SweepProgress` renders.
        ledger: a :class:`~repro.obs.ledger.RunLedger` (or its path);
            one provenance record per job is appended in job order after
            the sweep resolves, stamped with how each cell was obtained.

    Raises:
        ReproError: invalid arguments, duplicate jobs, a deterministic
            job failure, or a transient one that survived its retries.
    """
    if max_workers < 1:
        raise ReproError("max_workers must be at least 1")
    if retries < 0:
        raise ReproError("retries cannot be negative")
    if resume and journal is None:
        raise ReproError("resume requires a journal")
    fingerprints = [job.spec.fingerprint() for job in jobs]
    if len(set(fingerprints)) != len(fingerprints):
        seen: set[str] = set()
        for job, fingerprint in zip(jobs, fingerprints):
            if fingerprint in seen:
                raise ReproError(
                    f"duplicate sweep job {job.spec.label()}"
                )
            seen.add(fingerprint)

    cache = _as_cache(cache)
    journal = _as_journal(journal)
    ledger = as_ledger(ledger)
    report = SweepReport(total=len(jobs))
    if telemetry is not None:
        telemetry.registry.counter("jobs.executed")
        telemetry.registry.counter("jobs.retried")
        telemetry.registry.counter("jobs.journal.resumed")
        if cache is not None:
            cache.bind_telemetry(telemetry.registry)

    journaled: dict[str, WorkloadSchemeResult] = {}
    if journal is not None:
        if resume:
            journaled = journal.load()
            journal.open()
        else:
            journal.open(truncate=True)

    # Tier 1+2: resolve what we already know; collect the remainder.
    resolved: dict[int, WorkloadSchemeResult] = {}
    pending: list[tuple[int, SweepJob]] = []
    #: Per-index ledger provenance: (source, wall seconds, phase totals).
    provenance: dict[int, tuple[str, float, dict[str, float]]] = {}
    for index, (job, fingerprint) in enumerate(zip(jobs, fingerprints)):
        if fingerprint in journaled:
            if progress is not None:
                progress(job)
            if observer is not None:
                observer(JobEvent("resumed", job.spec.label(), index))
            resolved[index] = journaled[fingerprint]
            provenance[index] = ("journal", 0.0, {})
            report.resumed += 1
            if telemetry is not None:
                telemetry.registry.counter("jobs.journal.resumed").inc()
            continue
        if cache is not None:
            cached = cache.get(job.spec)
            if cached is not None:
                if progress is not None:
                    progress(job)
                if observer is not None:
                    observer(JobEvent("cache", job.spec.label(), index))
                resolved[index] = cached
                provenance[index] = ("cache", 0.0, {})
                report.cache_hits += 1
                if journal is not None:
                    journal.record(job.spec, cached)
                continue
        pending.append((index, job))

    # Tier 3: execute.
    try:
        if pending and max_workers == 1:
            _run_serial(
                pending, resolved, report,
                retries=retries,
                stage1=stage1 or Stage1Cache(),
                cache=cache, journal=journal,
                telemetry=telemetry, progress=progress,
                observer=observer, provenance=provenance,
            )
        elif pending:
            _run_parallel(
                pending, resolved, report,
                max_workers=max_workers, retries=retries,
                cache=cache, journal=journal,
                telemetry=telemetry, progress=progress,
                observer=observer, provenance=provenance,
            )
    finally:
        if journal is not None:
            journal.close()

    if ledger is not None:
        engine = {
            "total": report.total,
            "executed": report.executed,
            "cache_hits": report.cache_hits,
            "resumed": report.resumed,
            "retries": report.retries,
        }
        with ledger:
            for index, job in enumerate(jobs):
                source, wall_time_s, profile = provenance[index]
                ledger.append(RunRecord.for_result(
                    resolved[index],
                    seed=job.spec.seed,
                    n_instructions=job.spec.n_instructions,
                    wall_time_s=wall_time_s,
                    source=source,
                    fingerprint=fingerprints[index],
                    profile=profile,
                    engine=engine,
                ))

    return [resolved[index] for index in range(len(jobs))], report


def _count_executed(telemetry: Telemetry | None) -> None:
    if telemetry is not None:
        telemetry.registry.counter("jobs.executed").inc()


def _count_retry(telemetry: Telemetry | None) -> None:
    if telemetry is not None:
        telemetry.registry.counter("jobs.retried").inc()


def _complete(
    job: SweepJob,
    result: WorkloadSchemeResult,
    cache: ResultCache | None,
    journal: SweepJournal | None,
) -> None:
    if cache is not None:
        cache.put(job.spec, result)
    if journal is not None:
        journal.record(job.spec, result)


def _run_serial(
    pending, resolved, report, *,
    retries, stage1, cache, journal, telemetry, progress,
    observer=None, provenance=None,
) -> None:
    """In-process execution: the legacy sequential sweep, plus retries.

    Serial runs thread the parent telemetry (and so its profiler)
    straight through, so per-job phase totals are not separable; ledger
    records get an empty ``profile`` and the parent profiler keeps the
    whole picture.
    """
    for index, job in pending:
        if progress is not None:
            progress(job)
        if observer is not None:
            observer(JobEvent("dispatch", job.spec.label(), index))
        attempts = 0
        started = time.perf_counter()
        while True:
            try:
                result = run_workload(
                    job.spec.to_workload(),
                    job.spec.scheme,
                    job.config,
                    seed=job.spec.seed,
                    n_instructions=job.spec.n_instructions,
                    stage1=stage1,
                    fault_config=job.spec.fault,
                    telemetry=telemetry,
                )
                break
            except ReproError:
                raise
            except Exception as exc:
                attempts += 1
                if attempts > retries:
                    raise ReproError(
                        f"sweep job {job.spec.label()} failed after "
                        f"{attempts} attempt(s): {exc}"
                    ) from exc
                report.retries += 1
                _count_retry(telemetry)
                if observer is not None:
                    observer(JobEvent("retry", job.spec.label(), index))
        wall_time_s = time.perf_counter() - started
        report.executed += 1
        _count_executed(telemetry)
        resolved[index] = result
        if provenance is not None:
            provenance[index] = ("executed", wall_time_s, {})
        if observer is not None:
            observer(JobEvent(
                "done", job.spec.label(), index, wall_time_s=wall_time_s,
            ))
        _complete(job, result, cache, journal)


def _pool_context():
    """Prefer ``fork`` (fast, inherits warmed state) where available."""
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return None


def _phase_totals(profiler_state: list | None) -> dict[str, float]:
    """Flatten exported profiler state into ``{"a/b": seconds}`` totals."""
    if not profiler_state:
        return {}
    return {
        "/".join(path): float(seconds)
        for path, _calls, seconds in profiler_state
    }


def _run_parallel(
    pending, resolved, report, *,
    max_workers, retries, cache, journal, telemetry, progress,
    observer=None, provenance=None,
) -> None:
    """Process-pool execution with per-job retry and deterministic merge."""
    want_trace = telemetry is not None and telemetry.trace is not None
    payloads = {
        index: _Payload(
            spec=job.spec,
            config=job.config,
            collect_telemetry=telemetry is not None,
            trace=want_trace,
            trace_capacity=(
                telemetry.trace.capacity if want_trace else 1
            ),
            interval_instructions=(
                telemetry.interval_instructions if telemetry is not None else 0
            ),
            profile=telemetry is not None and telemetry.profiler.enabled,
        )
        for index, job in pending
    }
    jobs_by_index = dict(pending)
    outcomes: dict[int, _Outcome] = {}
    workers = min(max_workers, len(pending))
    with ProcessPoolExecutor(
        max_workers=workers, mp_context=_pool_context()
    ) as pool:
        try:
            futures = {}
            for index, job in pending:
                if progress is not None:
                    progress(job)
                if observer is not None:
                    observer(JobEvent("dispatch", job.spec.label(), index))
                futures[pool.submit(_execute_payload, payloads[index])] = (
                    index, 0,
                )
            while futures:
                done, _ = wait(futures, return_when=FIRST_COMPLETED)
                for future in done:
                    index, attempts = futures.pop(future)
                    job = jobs_by_index[index]
                    try:
                        outcome = future.result()
                    except ReproError as exc:
                        raise ReproError(
                            f"sweep job {job.spec.label()} failed: {exc}"
                        ) from exc
                    except BrokenProcessPool as exc:
                        raise ReproError(
                            "sweep worker pool died (out of memory?); "
                            f"job {job.spec.label()} was in flight: {exc}"
                        ) from exc
                    except Exception as exc:
                        if attempts >= retries:
                            raise ReproError(
                                f"sweep job {job.spec.label()} failed after "
                                f"{attempts + 1} attempt(s): {exc}"
                            ) from exc
                        report.retries += 1
                        _count_retry(telemetry)
                        if observer is not None:
                            observer(JobEvent(
                                "retry", job.spec.label(), index,
                            ))
                        futures[
                            pool.submit(_execute_payload, payloads[index])
                        ] = (index, attempts + 1)
                        continue
                    outcomes[index] = outcome
                    report.executed += 1
                    _count_executed(telemetry)
                    if provenance is not None:
                        provenance[index] = (
                            "executed",
                            outcome.wall_time_s,
                            _phase_totals(outcome.profiler_state),
                        )
                    if observer is not None:
                        observer(JobEvent(
                            "done", job.spec.label(), index,
                            wall_time_s=outcome.wall_time_s,
                        ))
                    _complete(job, outcome.result, cache, journal)
        except BaseException:
            pool.shutdown(wait=False, cancel_futures=True)
            raise
    # Deterministic merge: job order, not completion order.
    for index in sorted(outcomes):
        outcome = outcomes[index]
        resolved[index] = outcome.result
        _merge_outcome(telemetry, jobs_by_index[index], outcome)
