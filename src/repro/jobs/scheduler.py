"""The sweep scheduler: cache → journal → process pool → merge.

:func:`run_jobs` resolves a list of :class:`SweepJob` cells in three
tiers — journal replay (``resume=True``), content-addressed cache
lookup, then actual simulation — and executes the remainder either
in-process (``max_workers=1``, the exact legacy serial path: shared
:class:`~repro.sim.runner.Stage1Cache`, parent telemetry threaded
straight through) or on a ``ProcessPoolExecutor``.

Determinism guarantee: per-job randomness derives from
``(seed, workload, scheme)`` (see :mod:`repro.common.rng`), never from
scheduling, so a parallel sweep's results are field-for-field equal to
the serial ones and the output list always follows job-submission
order regardless of completion order.  Worker telemetry (registry
state + retained trace events) is merged into the parent handle in the
same deterministic job order.  Retry backoff jitter derives from the
job fingerprint (:meth:`~repro.jobs.spec.JobSpec.retry_delay_s`), so
even failure handling replays identically.

Worker processes are reused across jobs and keep a process-global
:class:`~repro.sim.runner.Stage1Cache`, so a worker that executes
several cells of one workload pays its stage-1 cost once.  The pool
uses the ``fork`` start method where the platform offers it (cheap,
and inherits warmed module state); elsewhere it falls back to the
platform default, which only requires the ``repro`` package to be
importable in the child.

Resilience layer (see ``docs/RESILIENCE.md``):

* **Crash recovery** — a dead worker (OOM kill, hard exit) breaks the
  whole ``ProcessPoolExecutor``; instead of aborting, the pool is
  rebuilt (bounded by ``max_pool_rebuilds``) and in-flight jobs are
  requeued.  With several jobs in flight the culprit is unknowable, so
  all of them become *suspects*, re-dispatched one at a time: a repeat
  crash then attributes exactly and charges that job a retry attempt.
* **Watchdog timeouts** — ``job_timeout_s`` sets a wall-clock deadline
  per job, scaled up by ``n_instructions`` relative to the default
  budget.  An overdue job's workers are killed, the pool rebuilt, the
  job charged an attempt and innocents requeued uncharged.
* **Retry with backoff** — transient failures retry up to ``retries``
  times with exponential, fingerprint-jittered delays; retries wait in
  a delay queue without blocking other dispatches.
* **Quarantine** — a job that exhausts its attempts (or fails
  deterministically) aborts the sweep by default; under ``keep_going``
  it is recorded to the :class:`~repro.jobs.journal.QuarantineJournal`
  and its cell resolves to a zeroed ``FAILED`` placeholder
  (:meth:`~repro.sim.metrics.WorkloadSchemeResult.failed_cell`) so the
  rest of the sweep completes.
* **Graceful cancellation** — the first SIGINT/SIGTERM stops
  dispatching, drains and journals in-flight jobs, flushes ledger
  records and raises :class:`~repro.common.errors.SweepCancelled` with
  a resume hint; a second signal aborts immediately.
* **Chaos hooks** — a :class:`~repro.jobs.chaos.ChaosPlan` travels in
  the worker payload and injects real failures (raise/hang/kill/exit/
  cache corruption) on chosen attempts, which is how the tests and the
  CI chaos-smoke job prove all of the above end to end.
"""

from __future__ import annotations

import multiprocessing
import re
import signal as signal_module
import sys
import threading
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field, replace
from pathlib import Path

from repro.common.errors import ReproError, SweepCancelled
from repro.config import FaultConfig, SystemConfig
from repro.jobs.cache import ResultCache
from repro.jobs.chaos import ChaosPlan, as_chaos
from repro.jobs.journal import QuarantineJournal, SweepJournal
from repro.jobs.spec import JobSpec
from repro.obs.ledger import RunLedger, RunRecord, as_ledger
from repro.obs.progress import JobEvent, tee_observers
from repro.obs.spans import SpanObserver, SpanRecorder, SpanWriter
from repro.sim.metrics import WorkloadSchemeResult
from repro.sim.runner import DEFAULT_INSTRUCTIONS, Stage1Cache, run_workload
from repro.sim.stage1_store import Stage1Store, as_stage1_store
from repro.telemetry import Telemetry
from repro.trace.workloads import Workload

#: Default per-job retry budget for transient failures.
DEFAULT_RETRIES = 1

#: Default base delay of the exponential retry backoff (seconds).
DEFAULT_BACKOFF_S = 0.25

#: Default bound on worker-pool rebuilds before the sweep gives up.
DEFAULT_MAX_POOL_REBUILDS = 8


@dataclass(frozen=True)
class SweepJob:
    """One schedulable cell: its identity plus the machine to run it on."""

    spec: JobSpec
    config: SystemConfig


@dataclass
class SweepReport:
    """How a sweep's cells were resolved (mirrors the ``jobs.*`` counters)."""

    total: int = 0
    executed: int = 0
    cache_hits: int = 0
    resumed: int = 0
    retries: int = 0
    #: Cells quarantined as FAILED placeholders (``keep_going`` only).
    failed: int = 0
    #: Watchdog-deadline expiries (each also charged as a retry attempt).
    timeouts: int = 0
    #: Worker-pool rebuilds after crashes or watchdog kills.
    pool_rebuilds: int = 0
    #: Innocent in-flight jobs requeued (uncharged) by rebuilds.
    requeued: int = 0

    def summary(self) -> str:
        """One-line human-readable accounting."""
        line = (
            f"{self.total} jobs: {self.executed} executed, "
            f"{self.cache_hits} from cache, {self.resumed} resumed"
            + (f", {self.retries} retried" if self.retries else "")
        )
        if self.timeouts:
            line += f", {self.timeouts} timed out"
        if self.pool_rebuilds:
            line += f", {self.pool_rebuilds} pool rebuild(s)"
        if self.failed:
            line += f", {self.failed} FAILED (quarantined)"
        return line


def matrix_jobs(
    workloads: list[Workload],
    schemes: tuple[str, ...],
    config: SystemConfig,
    *,
    seed: int | None,
    n_instructions: int,
    fault_config: FaultConfig | None = None,
) -> list[SweepJob]:
    """The grid's job list in canonical (workload-outer) order."""
    return [
        SweepJob(
            spec=JobSpec.for_run(
                workload, scheme, config,
                seed=seed, n_instructions=n_instructions,
                fault_config=fault_config,
            ),
            config=config,
        )
        for workload in workloads
        for scheme in schemes
    ]


# -- worker side -------------------------------------------------------------

#: Process-global stage-1 memo, shared by every job one worker executes.
_WORKER_STAGE1: Stage1Cache | None = None


@dataclass(frozen=True)
class _Payload:
    """Everything a worker needs to execute one job."""

    spec: JobSpec
    config: SystemConfig
    collect_telemetry: bool
    trace: bool
    trace_capacity: int
    interval_instructions: int
    profile: bool = False
    #: Zero-based attempt number (rebuilt per submission for retries).
    attempt: int = 0
    #: Fault-injection plan for chaos tests; None in production runs.
    chaos: ChaosPlan | None = None
    #: Span tracing: record run_workload phase spans in the worker and
    #: ship them back for the parent-side deterministic merge.
    spans: bool = False
    #: The sweep's shared trace id (span identity derives from it).
    trace_id: str | None = None
    #: The cell's parent-side ``job`` span id, so worker phases nest
    #: under their cell in the merged trace.
    span_parent: str | None = None
    #: Root of the shared on-disk :class:`Stage1Store`; None runs the
    #: worker's stage-1 memo purely in-memory.
    stage1_store: str | None = None


@dataclass
class _Outcome:
    """A worker's answer: the result plus its telemetry to merge."""

    result: WorkloadSchemeResult
    registry_state: dict | None = None
    events: list = field(default_factory=list)
    profiler_state: list | None = None
    wall_time_s: float = 0.0
    #: Finished worker-side spans (``SpanRecorder.export_state``).
    span_state: list | None = None


def _worker_store_root(cache: Stage1Cache) -> str | None:
    return str(cache.store.root) if cache.store is not None else None


def _execute_payload(payload: _Payload) -> _Outcome:
    """Run one job inside a worker process (also usable in-process)."""
    global _WORKER_STAGE1
    if payload.chaos is not None:
        payload.chaos.apply(payload.spec.label(), payload.attempt)
    if (
        _WORKER_STAGE1 is None
        or _worker_store_root(_WORKER_STAGE1) != payload.stage1_store
    ):
        _WORKER_STAGE1 = Stage1Cache(store=payload.stage1_store)
    telemetry = None
    if payload.collect_telemetry:
        telemetry = Telemetry(
            trace=payload.trace,
            trace_capacity=payload.trace_capacity,
            interval_instructions=payload.interval_instructions,
            profile=payload.profile,
        )
    recorder = None
    scope = nullcontext()
    if payload.spans:
        recorder = SpanRecorder(trace_id=payload.trace_id)
        # Phases nest under the cell's parent-side job span and
        # inherit its workload/scheme context; the attempt number is
        # volatile (a retry must not change span identity).
        scope = recorder.scope(
            parent_id=payload.span_parent,
            workload=payload.spec.workload,
            scheme=payload.spec.scheme,
            attempt=payload.attempt,
        )
    started = time.perf_counter()
    with scope:
        result = run_workload(
            payload.spec.to_workload(),
            payload.spec.scheme,
            payload.config,
            seed=payload.spec.seed,
            n_instructions=payload.spec.n_instructions,
            stage1=_WORKER_STAGE1,
            fault_config=payload.spec.fault,
            telemetry=telemetry,
            spans=recorder,
        )
    wall_time_s = time.perf_counter() - started
    span_state = recorder.export_state() if recorder is not None else None
    if telemetry is None:
        return _Outcome(
            result=result, wall_time_s=wall_time_s, span_state=span_state,
        )
    return _Outcome(
        result=result,
        registry_state=telemetry.registry.export_state(),
        events=(
            telemetry.trace.events() if telemetry.trace is not None else []
        ),
        profiler_state=(
            telemetry.profiler.export_state()
            if telemetry.profiler.enabled else None
        ),
        wall_time_s=wall_time_s,
        span_state=span_state,
    )


# -- parent side -------------------------------------------------------------


def _as_cache(cache: ResultCache | str | Path | None) -> ResultCache | None:
    if cache is None or isinstance(cache, ResultCache):
        return cache
    return ResultCache(cache)


def _as_journal(
    journal: SweepJournal | str | Path | None,
) -> SweepJournal | None:
    if journal is None or isinstance(journal, SweepJournal):
        return journal
    return SweepJournal(journal)


def _as_quarantine(
    quarantine: QuarantineJournal | str | Path | None,
) -> QuarantineJournal | None:
    if quarantine is None or isinstance(quarantine, QuarantineJournal):
        return quarantine
    return QuarantineJournal(quarantine)


def _merge_outcome(
    telemetry: Telemetry | None,
    job: SweepJob,
    outcome: _Outcome,
    span_recorder: SpanRecorder | None = None,
) -> None:
    """Fold one worker's telemetry (and spans) into the parent handles."""
    if span_recorder is not None and outcome.span_state:
        # Worker spans already carry workload/scheme from their scope
        # frame; merging streams them to the spans.jsonl sink.
        span_recorder.merge_state(outcome.span_state)
    if telemetry is None:
        return
    if outcome.registry_state is not None:
        telemetry.registry.merge_state(outcome.registry_state)
    # Never merge into the shared DISABLED_PROFILER singleton: a parent
    # that did not ask for profiling drops the worker's phase totals.
    if telemetry.profiler.enabled and outcome.profiler_state:
        telemetry.profiler.merge_state(outcome.profiler_state)
    if telemetry.trace is not None and outcome.events:
        extra = {"workload": job.spec.workload, "scheme": job.spec.scheme}
        if job.spec.fault is not None:
            extra["age"] = job.spec.fault.age_fraction
        telemetry.trace.merge(outcome.events, extra=extra)


class GracefulCancel:
    """Two-phase SIGINT/SIGTERM bookkeeping for a running sweep.

    The first signal only raises the :attr:`soft` flag — the engines
    stop dispatching, drain in-flight jobs (journaling their results)
    and raise :class:`~repro.common.errors.SweepCancelled` with a
    resume hint.  A second signal raises ``KeyboardInterrupt`` from the
    handler: the hard abort for a drain that is itself stuck.
    """

    def __init__(self, stream=None) -> None:
        self.signals = 0
        self.stream = stream if stream is not None else sys.stderr

    @property
    def soft(self) -> bool:
        """True once the first signal arrived: stop dispatching."""
        return self.signals >= 1

    def __call__(self, signum, frame) -> None:
        self.signals += 1
        if self.signals == 1:
            self.stream.write(
                "\nsweep: interrupt received — finishing in-flight jobs "
                "and journaling results (interrupt again to abort now)\n"
            )
            self.stream.flush()
            return
        raise KeyboardInterrupt


@contextmanager
def _graceful_signals(cancel: GracefulCancel | None):
    """Install ``cancel`` as the SIGINT/SIGTERM handler, then restore.

    A no-op off the main thread (the interpreter refuses handler
    installation there) and when ``cancel`` is None.
    """
    if (
        cancel is None
        or threading.current_thread() is not threading.main_thread()
    ):
        yield
        return
    previous = {}
    for signum in (signal_module.SIGINT, signal_module.SIGTERM):
        try:
            previous[signum] = signal_module.signal(signum, cancel)
        except (ValueError, OSError):
            pass
    try:
        yield
    finally:
        for signum, handler in previous.items():
            try:
                signal_module.signal(signum, handler)
            except (ValueError, OSError):
                pass


@dataclass
class _Resilience:
    """The failure-handling knobs both execution engines consult."""

    retries: int
    keep_going: bool
    quarantine: QuarantineJournal | None
    backoff_s: float
    job_timeout_s: float | None
    max_pool_rebuilds: int
    chaos: ChaosPlan | None
    cancel: GracefulCancel | None


def run_jobs(
    jobs: list[SweepJob],
    *,
    max_workers: int = 1,
    cache: ResultCache | str | Path | None = None,
    journal: SweepJournal | str | Path | None = None,
    resume: bool = False,
    retries: int = DEFAULT_RETRIES,
    stage1: Stage1Cache | None = None,
    stage1_store: Stage1Store | str | Path | None = None,
    telemetry: Telemetry | None = None,
    progress=None,
    observer=None,
    ledger: RunLedger | str | Path | None = None,
    job_timeout_s: float | None = None,
    keep_going: bool = False,
    quarantine: QuarantineJournal | str | Path | None = None,
    backoff_s: float = DEFAULT_BACKOFF_S,
    max_pool_rebuilds: int = DEFAULT_MAX_POOL_REBUILDS,
    chaos: ChaosPlan | str | None = None,
    install_signal_handlers: bool = True,
    spans: SpanRecorder | str | Path | None = None,
) -> tuple[list[WorkloadSchemeResult], SweepReport]:
    """Resolve every job; returns results in job order plus a report.

    Args:
        jobs: the cells to resolve (duplicate fingerprints are an error).
        max_workers: 1 executes in-process — the exact serial path, with
            ``stage1`` shared across cells and ``telemetry`` threaded
            directly into the simulations; >1 fans out over a process
            pool with per-worker stage-1 caches and post-hoc telemetry
            merging.
        cache: a :class:`~repro.jobs.cache.ResultCache` (or its root
            directory) consulted before executing and updated after.
        stage1_store: a :class:`~repro.sim.stage1_store.Stage1Store`
            (or its root directory) layered under every stage-1 cache —
            the serial run's and each pool worker's — so parallel
            workers and repeat runs share one on-disk characterisation
            per ``(app, config signature, seed, budget)`` instead of
            re-simulating it per process.
        journal: a :class:`~repro.jobs.journal.SweepJournal` (or its
            path) appended to as cells complete.  Without ``resume`` the
            journal restarts empty.
        resume: replay completed cells from the journal instead of
            rerunning them; requires ``journal``.
        retries: extra attempts per job after a transient (non-
            :class:`~repro.common.errors.ReproError`) failure, a worker
            crash attributed to the job, or a watchdog timeout.
        progress: optional ``(job: SweepJob) -> None`` narration hook,
            fired once per job as it is dispatched or served.
        observer: optional ``(event: JobEvent) -> None`` hook receiving
            the live event stream (see
            :data:`repro.obs.progress.EVENT_KINDS`) — what
            :class:`~repro.obs.progress.SweepProgress` renders.
        ledger: a :class:`~repro.obs.ledger.RunLedger` (or its path);
            one provenance record per resolved job is appended in job
            order, stamped with how each cell was obtained.  On an
            abort, records for the cells that *did* resolve are flushed
            before the error propagates.
        job_timeout_s: watchdog wall-clock deadline per job, scaled up
            for budgets above the ``DEFAULT_INSTRUCTIONS`` reference
            (never down, so small smoke budgets keep the full grace
            period).  None disables the watchdog.
        keep_going: quarantine poison jobs (crash / timeout / retry
            exhaustion / deterministic failure) as zeroed ``FAILED``
            placeholder cells instead of aborting the sweep.
        quarantine: a :class:`~repro.jobs.journal.QuarantineJournal`
            (or its path) receiving one record per poisoned job.
        backoff_s: base of the exponential retry backoff; jitter is
            deterministic per job fingerprint.  0 retries immediately.
        max_pool_rebuilds: worker-pool rebuild budget; one more crash
            or watchdog kill after this aborts even under
            ``keep_going``.
        chaos: a :class:`~repro.jobs.chaos.ChaosPlan` (or its spec
            string) injecting worker failures — test harness only.
        install_signal_handlers: install the two-phase SIGINT/SIGTERM
            graceful-cancellation handler for the duration of the sweep
            (main thread only; restored afterwards).
        spans: span tracing — a ``spans.jsonl`` path (records streamed
            as cells finish; truncated unless ``resume``) or a
            :class:`~repro.obs.spans.SpanRecorder` to collect in
            memory.  The sweep becomes the root span, every cell gets
            a ``job`` span, ``run_workload`` phases nest under their
            cell, and retries/timeouts/requeues/quarantines appear as
            instant events (see ``docs/OBSERVABILITY.md``).

    Raises:
        ReproError: invalid arguments, duplicate jobs, a poison job
            without ``keep_going``, or an exhausted pool-rebuild budget.
        SweepCancelled: the sweep was interrupted and drained; the
            message carries the resume hint.
    """
    if max_workers < 1:
        raise ReproError("max_workers must be at least 1")
    if retries < 0:
        raise ReproError("retries cannot be negative")
    if resume and journal is None:
        raise ReproError("resume requires a journal")
    if job_timeout_s is not None and job_timeout_s <= 0:
        raise ReproError("job_timeout_s must be positive (or None)")
    if backoff_s < 0:
        raise ReproError("backoff_s cannot be negative")
    if max_pool_rebuilds < 1:
        raise ReproError("max_pool_rebuilds must be at least 1")
    fingerprints = [job.spec.fingerprint() for job in jobs]
    if len(set(fingerprints)) != len(fingerprints):
        seen: set[str] = set()
        for job, fingerprint in zip(jobs, fingerprints):
            if fingerprint in seen:
                raise ReproError(
                    f"duplicate sweep job {job.spec.label()}"
                )
            seen.add(fingerprint)

    cache = _as_cache(cache)
    journal = _as_journal(journal)
    ledger = as_ledger(ledger)
    quarantine = _as_quarantine(quarantine)
    chaos = as_chaos(chaos)
    stage1_store = as_stage1_store(stage1_store)
    if (
        stage1 is not None
        and stage1_store is not None
        and stage1.store is None
    ):
        stage1.store = stage1_store
    report = SweepReport(total=len(jobs))
    if telemetry is not None:
        telemetry.registry.counter("jobs.executed")
        telemetry.registry.counter("jobs.retried")
        telemetry.registry.counter("jobs.journal.resumed")
        telemetry.registry.counter("jobs.recovery.pool_rebuilds")
        telemetry.registry.counter("jobs.recovery.timeouts")
        telemetry.registry.counter("jobs.recovery.requeued")
        telemetry.registry.counter("jobs.recovery.quarantined")
        telemetry.registry.counter("jobs.stage1.hits")
        telemetry.registry.counter("jobs.stage1.misses")
        if cache is not None:
            cache.bind_telemetry(telemetry.registry)
        if stage1_store is not None:
            stage1_store.bind_telemetry(telemetry.registry)

    journaled: dict[str, WorkloadSchemeResult] = {}
    if journal is not None:
        if resume:
            journaled = journal.load()
            journal.open()
        else:
            journal.open(truncate=True)

    cancel = GracefulCancel() if install_signal_handlers else None
    res = _Resilience(
        retries=retries, keep_going=keep_going, quarantine=quarantine,
        backoff_s=backoff_s, job_timeout_s=job_timeout_s,
        max_pool_rebuilds=max_pool_rebuilds, chaos=chaos, cancel=cancel,
    )

    # Span layer: root span, job-span observer, optional jsonl sink.
    # Composed *before* tier 1+2 so cache/resumed cells record instants.
    span_recorder: SpanRecorder | None = None
    span_writer: SpanWriter | None = None
    span_observer: SpanObserver | None = None
    root_span = None
    if spans is not None:
        if isinstance(spans, SpanRecorder):
            span_recorder = spans
        else:
            span_writer = SpanWriter(spans)
            span_writer.open(truncate=not resume)
            span_recorder = SpanRecorder(sink=span_writer.record)
        root_span = span_recorder.begin(
            "sweep", "sweep", total=len(jobs), workers=max_workers,
        )
        span_observer = SpanObserver(
            span_recorder, parent_id=root_span.span_id,
        )
        observer = tee_observers(observer, span_observer)

    # Tier 1+2: resolve what we already know; collect the remainder.
    resolved: dict[int, WorkloadSchemeResult] = {}
    pending: list[tuple[int, SweepJob]] = []
    #: Per-index ledger provenance: (source, wall seconds, phase totals).
    provenance: dict[int, tuple[str, float, dict[str, float]]] = {}
    for index, (job, fingerprint) in enumerate(zip(jobs, fingerprints)):
        if fingerprint in journaled:
            if progress is not None:
                progress(job)
            if observer is not None:
                observer(JobEvent("resumed", job.spec.label(), index))
            resolved[index] = journaled[fingerprint]
            provenance[index] = ("journal", 0.0, {})
            report.resumed += 1
            if telemetry is not None:
                telemetry.registry.counter("jobs.journal.resumed").inc()
            continue
        if cache is not None:
            cached = cache.get(job.spec)
            if cached is not None:
                if progress is not None:
                    progress(job)
                if observer is not None:
                    observer(JobEvent("cache", job.spec.label(), index))
                resolved[index] = cached
                provenance[index] = ("cache", 0.0, {})
                report.cache_hits += 1
                if journal is not None:
                    journal.record(job.spec, cached)
                continue
        pending.append((index, job))

    ledger_flushed = False

    def _flush_ledger() -> None:
        # Satellite of the abort path: every cell that resolved must
        # reach the ledger, whether the sweep finished or died — so
        # this runs once, from the success path or the except path.
        nonlocal ledger_flushed
        if ledger is None or ledger_flushed:
            return
        ledger_flushed = True
        engine = {
            "total": report.total,
            "executed": report.executed,
            "cache_hits": report.cache_hits,
            "resumed": report.resumed,
            "retries": report.retries,
        }
        for key in ("failed", "timeouts", "pool_rebuilds", "requeued"):
            value = getattr(report, key)
            if value:
                engine[key] = value
        with ledger:
            for index, job in enumerate(jobs):
                if index not in resolved or index not in provenance:
                    continue
                source, wall_time_s, profile = provenance[index]
                ledger.append(RunRecord.for_result(
                    resolved[index],
                    seed=job.spec.seed,
                    n_instructions=job.spec.n_instructions,
                    wall_time_s=wall_time_s,
                    source=source,
                    fingerprint=fingerprints[index],
                    profile=profile,
                    engine=engine,
                ))

    # Tier 3: execute.
    try:
        with _graceful_signals(cancel):
            if pending and max_workers == 1:
                _run_serial(
                    pending, resolved, report,
                    res=res,
                    stage1=(
                        stage1 if stage1 is not None
                        else Stage1Cache(store=stage1_store)
                    ),
                    cache=cache, journal=journal,
                    telemetry=telemetry, progress=progress,
                    observer=observer, provenance=provenance,
                    span_recorder=span_recorder, span_observer=span_observer,
                )
            elif pending:
                _run_parallel(
                    pending, resolved, report,
                    max_workers=max_workers, res=res,
                    stage1_store=stage1_store,
                    cache=cache, journal=journal,
                    telemetry=telemetry, progress=progress,
                    observer=observer, provenance=provenance,
                    span_recorder=span_recorder, span_observer=span_observer,
                )
    except BaseException:
        try:
            _flush_ledger()
        except Exception:
            # Never let ledger trouble mask the original abort cause.
            pass
        raise
    finally:
        # The root span closes even on an abort — a partial trace of a
        # cancelled sweep is exactly when spans are wanted.
        if root_span is not None:
            try:
                span_recorder.end(root_span)
            except Exception:
                pass
        if span_writer is not None:
            span_writer.close()
        if journal is not None:
            journal.close()
        if quarantine is not None:
            quarantine.close()

    _flush_ledger()
    return [resolved[index] for index in range(len(jobs))], report


def _count(telemetry: Telemetry | None, name: str, amount: int = 1) -> None:
    if telemetry is not None and amount:
        telemetry.registry.counter(name).inc(amount)


def _count_executed(telemetry: Telemetry | None) -> None:
    _count(telemetry, "jobs.executed")


def _retry_kind(exc: BaseException | str) -> str:
    """Counter-safe failure kind: lowercased exception class name."""
    name = exc if isinstance(exc, str) else type(exc).__name__
    kind = re.sub(r"[^a-z0-9_-]", "", name.lower())
    if not kind or not kind[0].isalpha():
        kind = f"e{kind}" if kind else "unknown"
    return kind


def _count_retry(telemetry: Telemetry | None, kind: str) -> None:
    """One retry: the total plus the per-failure-kind breakdown."""
    _count(telemetry, "jobs.retried")
    _count(telemetry, f"jobs.retry.{kind}")


def _complete(
    job: SweepJob,
    result: WorkloadSchemeResult,
    cache: ResultCache | None,
    journal: SweepJournal | None,
) -> None:
    if cache is not None:
        cache.put(job.spec, result)
    if journal is not None:
        journal.record(job.spec, result)


def _chaos_corrupt(
    res: _Resilience, job: SweepJob, attempt: int, cache: ResultCache | None
) -> None:
    """Parent-side ``corrupt`` chaos rules: mangle the fresh cache entry."""
    if res.chaos is None or cache is None:
        return
    rule = res.chaos.rule_for(job.spec.label(), attempt)
    if rule is not None and rule.action == "corrupt":
        cache.corrupt(job.spec)


#: Poison-message verb per failure kind (anything else reads "failed").
_POISON_PHRASE = {
    "crash": "crashed the worker pool",
    "timeout": "timed out",
}


def _poison(
    job: SweepJob,
    index: int,
    attempts: int,
    kind: str,
    reason: str,
    *,
    resolved,
    report: SweepReport,
    res: _Resilience,
    telemetry: Telemetry | None,
    provenance,
    observer,
    cause: BaseException | None = None,
    message: str | None = None,
) -> None:
    """Give up on one job: quarantine it (``keep_going``) or abort.

    ``kind`` is the retry/telemetry kind; it collapses onto the
    quarantine kinds (``crash``/``timeout``/``error``) for the journal
    record and the FAILED placeholder's reason string.
    """
    qkind = kind if kind in ("crash", "timeout") else "error"
    if message is None:
        phrase = _POISON_PHRASE.get(kind, "failed")
        message = (
            f"sweep job {job.spec.label()} {phrase} after "
            f"{attempts} attempt(s): {reason}"
        )
    if not res.keep_going:
        raise ReproError(
            message
            + " (run with keep_going/--keep-going to quarantine failing "
            "cells and continue)"
        ) from cause
    if res.quarantine is not None:
        res.quarantine.record(
            job.spec, kind=qkind, reason=reason, attempts=attempts,
        )
    report.failed += 1
    _count(telemetry, "jobs.recovery.quarantined")
    resolved[index] = WorkloadSchemeResult.failed_cell(
        workload=job.spec.workload,
        scheme=job.spec.scheme,
        apps=job.spec.apps,
        n_banks=job.config.num_banks,
        reason=f"{qkind}: {reason}",
        age_fraction=(
            job.spec.fault.age_fraction if job.spec.fault is not None else 0.0
        ),
    )
    if provenance is not None:
        provenance[index] = ("failed", 0.0, {})
    if observer is not None:
        observer(JobEvent("failed", job.spec.label(), index))


def _cancel_message(
    report: SweepReport, journal: SweepJournal | None
) -> str:
    done = (
        report.executed + report.cache_hits + report.resumed + report.failed
    )
    message = (
        f"sweep cancelled by user: {done} of {report.total} cells "
        "resolved and journaled"
    )
    if journal is not None:
        message += (
            f"; rerun with resume=True (--resume) against the same "
            f"journal ({journal.path}) to finish the rest"
        )
    else:
        message += "; run with a journal to make cancelled sweeps resumable"
    return message


def _run_serial(
    pending, resolved, report, *,
    res, stage1, cache, journal, telemetry, progress,
    observer=None, provenance=None,
    span_recorder=None, span_observer=None,
) -> None:
    """In-process execution: the legacy sequential sweep, plus retries.

    Serial runs thread the parent telemetry (and so its profiler)
    straight through, so per-job phase totals are not separable; ledger
    records get an empty ``profile`` and the parent profiler keeps the
    whole picture.  The watchdog does not apply here (there is no
    second process to kill); chaos ``kill``/``exit`` rules would take
    the parent down and belong in parallel runs.
    """
    for index, job in pending:
        if res.cancel is not None and res.cancel.soft:
            raise SweepCancelled(_cancel_message(report, journal))
        if progress is not None:
            progress(job)
        if observer is not None:
            observer(JobEvent("dispatch", job.spec.label(), index))
        attempts = 0
        started = time.perf_counter()
        failed = False
        while True:
            try:
                if res.chaos is not None:
                    res.chaos.apply(job.spec.label(), attempts)
                scope = nullcontext()
                if span_recorder is not None:
                    scope = span_recorder.scope(
                        parent_id=span_observer.open_span_id(index),
                        workload=job.spec.workload,
                        scheme=job.spec.scheme,
                        attempt=attempts,
                    )
                with scope:
                    result = run_workload(
                        job.spec.to_workload(),
                        job.spec.scheme,
                        job.config,
                        seed=job.spec.seed,
                        n_instructions=job.spec.n_instructions,
                        stage1=stage1,
                        fault_config=job.spec.fault,
                        telemetry=telemetry,
                        spans=span_recorder,
                    )
                break
            except ReproError as exc:
                if not res.keep_going:
                    raise
                _poison(
                    job, index, attempts + 1, "error", str(exc),
                    resolved=resolved, report=report, res=res,
                    telemetry=telemetry, provenance=provenance,
                    observer=observer, cause=exc,
                )
                failed = True
                break
            except Exception as exc:
                attempts += 1
                if attempts > res.retries:
                    _poison(
                        job, index, attempts, _retry_kind(exc), str(exc),
                        resolved=resolved, report=report, res=res,
                        telemetry=telemetry, provenance=provenance,
                        observer=observer, cause=exc,
                        message=(
                            f"sweep job {job.spec.label()} failed after "
                            f"{attempts} attempt(s): {exc}"
                        ),
                    )
                    failed = True
                    break
                report.retries += 1
                _count_retry(telemetry, _retry_kind(exc))
                if observer is not None:
                    observer(JobEvent("retry", job.spec.label(), index))
                delay = job.spec.retry_delay_s(
                    attempts - 1, base_s=res.backoff_s
                )
                if delay > 0:
                    time.sleep(delay)
        if failed:
            continue
        wall_time_s = time.perf_counter() - started
        report.executed += 1
        _count_executed(telemetry)
        resolved[index] = result
        if provenance is not None:
            provenance[index] = ("executed", wall_time_s, {})
        if observer is not None:
            observer(JobEvent(
                "done", job.spec.label(), index, wall_time_s=wall_time_s,
            ))
        _complete(job, result, cache, journal)
        _chaos_corrupt(res, job, attempts, cache)
    if res.cancel is not None and res.cancel.soft:
        raise SweepCancelled(_cancel_message(report, journal))


def _pool_context():
    """Prefer ``fork`` (fast, inherits warmed state) where available."""
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return None


def _worker_init() -> None:
    """Pool initializer: restore default signal dispositions.

    Forked workers inherit the parent's :class:`GracefulCancel`
    handler; without this reset, the executor's broken-pool cleanup
    (which SIGTERMs surviving workers) would trip the drain notice
    inside a worker — and the worker would swallow the signal instead
    of dying.
    """
    for signum in (signal_module.SIGINT, signal_module.SIGTERM):
        try:
            signal_module.signal(signum, signal_module.SIG_DFL)
        except (ValueError, OSError):
            pass


def _phase_totals(profiler_state: list | None) -> dict[str, float]:
    """Flatten exported profiler state into ``{"a/b": seconds}`` totals."""
    if not profiler_state:
        return {}
    return {
        "/".join(path): float(seconds)
        for path, _calls, seconds in profiler_state
    }


def _deadline_s(spec: JobSpec, job_timeout_s: float | None) -> float | None:
    """The watchdog deadline for one job: scaled up for big budgets.

    ``job_timeout_s`` is calibrated against the default instruction
    budget; a job simulating 10x the instructions gets 10x the wall
    clock.  Budgets *below* the reference keep the full deadline — the
    flag is a floor, so tiny CI smoke budgets are not starved into
    spurious timeouts.
    """
    if job_timeout_s is None:
        return None
    scale = max(1.0, spec.n_instructions / DEFAULT_INSTRUCTIONS)
    return job_timeout_s * scale


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Hard-stop a pool: SIGKILL its workers, then tear down the plumbing.

    ``ProcessPoolExecutor`` has no per-job cancellation, so a hung or
    poisoned worker can only be dealt with wholesale: kill every worker
    process (a hung one never reacts to anything softer) and shut the
    executor down without waiting.
    """
    processes = list((getattr(pool, "_processes", None) or {}).values())
    for process in processes:
        try:
            if process.is_alive():
                process.kill()
        except Exception:
            pass
    pool.shutdown(wait=False, cancel_futures=True)


@dataclass
class _Flight:
    """One in-flight submission: which job, which attempt, its deadline."""

    index: int
    attempts: int
    started: float
    deadline_s: float | None


def _run_parallel(
    pending, resolved, report, *,
    max_workers, res, cache, journal, telemetry, progress,
    stage1_store=None,
    observer=None, provenance=None,
    span_recorder=None, span_observer=None,
) -> None:
    """Process-pool execution with crash recovery and deterministic merge.

    The dispatch loop keeps at most ``workers`` jobs in flight (so the
    in-flight set is exactly what a pool crash can take down), promotes
    backoff-delayed retries as their deadlines pass, and runs
    *suspects* — jobs requeued by an unattributed pool crash — one at a
    time so a repeat crash identifies its culprit.
    """
    want_trace = telemetry is not None and telemetry.trace is not None
    payloads = {
        index: _Payload(
            spec=job.spec,
            config=job.config,
            collect_telemetry=telemetry is not None,
            trace=want_trace,
            trace_capacity=(
                telemetry.trace.capacity if want_trace else 1
            ),
            interval_instructions=(
                telemetry.interval_instructions if telemetry is not None else 0
            ),
            profile=telemetry is not None and telemetry.profiler.enabled,
            chaos=res.chaos,
            spans=span_recorder is not None,
            trace_id=(
                span_recorder.trace_id if span_recorder is not None else None
            ),
            stage1_store=(
                str(stage1_store.root) if stage1_store is not None else None
            ),
        )
        for index, job in pending
    }
    jobs_by_index = dict(pending)
    outcomes: dict[int, _Outcome] = {}
    workers = min(max_workers, len(pending))
    context = _pool_context()
    pool = ProcessPoolExecutor(
        max_workers=workers, mp_context=context, initializer=_worker_init,
    )
    rebuilds = 0
    announced: set[int] = set()
    #: (index, attempts) queues: ready to submit / backoff-delayed
    #: (with their not-before instant) / crash suspects on probation.
    ready: deque[tuple[int, int]] = deque(
        (index, 0) for index, _job in pending
    )
    delayed: list[tuple[float, int, int]] = []
    suspects: deque[tuple[int, int]] = deque()
    futures: dict = {}

    def _event(kind: str, index: int, **kw) -> None:
        if observer is not None:
            observer(JobEvent(
                kind, jobs_by_index[index].spec.label(), index, **kw,
            ))

    def _rebuild_pool(reason: str) -> None:
        nonlocal pool, rebuilds
        rebuilds += 1
        report.pool_rebuilds += 1
        _count(telemetry, "jobs.recovery.pool_rebuilds")
        _kill_pool(pool)
        if rebuilds > res.max_pool_rebuilds:
            raise ReproError(
                f"sweep worker pool died {rebuilds} times "
                f"(last cause: {reason}); rebuild budget "
                f"({res.max_pool_rebuilds}) exhausted — is the machine "
                "out of memory?"
            )
        pool = ProcessPoolExecutor(
            max_workers=workers, mp_context=context,
            initializer=_worker_init,
        )

    def _submit(index: int, attempts: int) -> None:
        if index not in announced:
            announced.add(index)
            if progress is not None:
                progress(jobs_by_index[index])
            _event("dispatch", index)
        payload = replace(
            payloads[index],
            attempt=attempts,
            span_parent=(
                span_observer.open_span_id(index)
                if span_observer is not None else None
            ),
        )
        while True:
            try:
                future = pool.submit(_execute_payload, payload)
                break
            except BrokenProcessPool:
                # Broke between completions; nothing else was in
                # flight, so no jobs to requeue — just rebuild.
                _rebuild_pool("pool broke before submission")
        futures[future] = _Flight(
            index=index, attempts=attempts, started=time.monotonic(),
            deadline_s=_deadline_s(
                jobs_by_index[index].spec, res.job_timeout_s
            ),
        )

    def _charge(flight: _Flight, kind: str, reason: str,
                cause: BaseException | None = None) -> None:
        """Account one failed attempt: requeue with backoff, or poison."""
        attempts = flight.attempts + 1
        job = jobs_by_index[flight.index]
        if attempts > res.retries:
            _poison(
                job, flight.index, attempts, kind, reason,
                resolved=resolved, report=report, res=res,
                telemetry=telemetry, provenance=provenance,
                observer=observer, cause=cause,
            )
            return
        report.retries += 1
        _count_retry(telemetry, kind)
        _event("retry", flight.index)
        delay = job.spec.retry_delay_s(flight.attempts, base_s=res.backoff_s)
        if delay > 0:
            delayed.append((time.monotonic() + delay, flight.index, attempts))
        else:
            ready.append((flight.index, attempts))

    try:
        while ready or delayed or suspects or futures:
            now = time.monotonic()
            if delayed:
                due = sorted(
                    (d for d in delayed if d[0] <= now), key=lambda d: d[1]
                )
                if due:
                    delayed = [d for d in delayed if d[0] > now]
                    ready.extend((index, attempts) for _, index, attempts in due)
            soft = res.cancel is not None and res.cancel.soft
            if not soft:
                if suspects:
                    # Probation: one suspect at a time, alone in the
                    # pool, so a repeat crash attributes exactly.
                    if not futures:
                        _submit(*suspects.popleft())
                else:
                    while ready and len(futures) < workers:
                        _submit(*ready.popleft())
            if not futures:
                if soft:
                    break
                if delayed:
                    next_at = min(d[0] for d in delayed)
                    pause = min(max(0.0, next_at - time.monotonic()), 0.25)
                    if pause > 0:
                        time.sleep(pause)
                continue

            timeout = None
            for flight in futures.values():
                if flight.deadline_s is not None:
                    left = flight.started + flight.deadline_s - now
                    timeout = left if timeout is None else min(timeout, left)
            if delayed:
                left = min(d[0] for d in delayed) - now
                timeout = left if timeout is None else min(timeout, left)
            if timeout is not None:
                timeout = max(0.01, timeout)
            done, _ = wait(
                set(futures), timeout=timeout, return_when=FIRST_COMPLETED
            )

            crashed: list[_Flight] = []
            for future in done:
                flight = futures.pop(future)
                index = flight.index
                job = jobs_by_index[index]
                try:
                    outcome = future.result()
                except ReproError as exc:
                    # Deterministic failure: retrying cannot help.
                    _poison(
                        job, index, flight.attempts + 1, "error", str(exc),
                        resolved=resolved, report=report, res=res,
                        telemetry=telemetry, provenance=provenance,
                        observer=observer, cause=exc,
                        message=(
                            f"sweep job {job.spec.label()} failed: {exc}"
                        ),
                    )
                except BrokenProcessPool:
                    crashed.append(flight)
                except Exception as exc:
                    _charge(flight, _retry_kind(exc), str(exc), exc)
                else:
                    outcomes[index] = outcome
                    resolved[index] = outcome.result
                    report.executed += 1
                    _count_executed(telemetry)
                    if provenance is not None:
                        provenance[index] = (
                            "executed",
                            outcome.wall_time_s,
                            _phase_totals(outcome.profiler_state),
                        )
                    _event("done", index, wall_time_s=outcome.wall_time_s)
                    _complete(job, outcome.result, cache, journal)
                    _chaos_corrupt(res, job, flight.attempts, cache)

            if crashed:
                # The pool is broken: every remaining in-flight future
                # is doomed with it.  Rebuild, then attribute: a lone
                # in-flight job is charged directly; with several we
                # cannot tell who killed the pool, so all are requeued
                # uncharged as suspects and re-run one at a time.
                inflight = crashed + list(futures.values())
                futures.clear()
                _rebuild_pool("a worker process died unexpectedly")
                if len(inflight) == 1:
                    _charge(
                        inflight[0], "crash",
                        "worker process died unexpectedly",
                    )
                else:
                    report.requeued += len(inflight)
                    _count(
                        telemetry, "jobs.recovery.requeued", len(inflight)
                    )
                    for flight in sorted(inflight, key=lambda f: f.index):
                        suspects.append((flight.index, flight.attempts))
                        _event("requeue", flight.index)
                continue

            if (
                res.job_timeout_s is not None
                and futures
                and not any(f.done() for f in futures)
            ):
                now = time.monotonic()
                expired = {
                    f: fl for f, fl in futures.items()
                    if fl.deadline_s is not None
                    and now - fl.started >= fl.deadline_s
                }
                if expired:
                    innocents = [
                        fl for f, fl in futures.items() if f not in expired
                    ]
                    futures.clear()
                    report.timeouts += len(expired)
                    _count(
                        telemetry, "jobs.recovery.timeouts", len(expired)
                    )
                    # No per-job kill exists: take the pool down and
                    # rebuild, requeueing the innocent bystanders free
                    # of charge.
                    _rebuild_pool("watchdog deadline exceeded")
                    for flight in sorted(
                        expired.values(), key=lambda f: f.index
                    ):
                        _event("timeout", flight.index)
                        _charge(
                            flight, "timeout",
                            f"exceeded {flight.deadline_s:.1f}s watchdog "
                            "deadline",
                        )
                    if innocents:
                        report.requeued += len(innocents)
                        _count(
                            telemetry, "jobs.recovery.requeued",
                            len(innocents),
                        )
                        for flight in sorted(
                            innocents, key=lambda f: f.index, reverse=True,
                        ):
                            ready.appendleft((flight.index, flight.attempts))
                            _event("requeue", flight.index)
    except BaseException:
        _kill_pool(pool)
        raise
    pool.shutdown(wait=True)

    # Deterministic merge: job order, not completion order.
    for index in sorted(outcomes):
        _merge_outcome(
            telemetry, jobs_by_index[index], outcomes[index], span_recorder,
        )
    if res.cancel is not None and res.cancel.soft:
        raise SweepCancelled(_cancel_message(report, journal))
