"""Content-addressed on-disk cache of stage-2 results.

A :class:`ResultCache` maps :meth:`JobSpec fingerprints
<repro.jobs.spec.JobSpec.fingerprint>` to persisted
:class:`~repro.sim.metrics.WorkloadSchemeResult` payloads (the same JSON
layout :mod:`repro.sim.store` writes into matrix files), so re-running a
sweep after changing an unrelated flag replays only the cells whose
inputs actually changed.

Invalidation rules:

* the fingerprint covers every simulation input (workload content,
  scheme, seed, budget, configuration signature, fault point) plus
  ``SPEC_FORMAT_VERSION`` — any input change selects a different file;
* every entry embeds ``CACHE_FORMAT_VERSION``; entries written by an
  incompatible engine read as misses (and are overwritten on the next
  ``put``), never as errors;
* corrupt or truncated entries read as misses too — writes are atomic
  (:func:`repro.sim.store.atomic_write_text`), so these only appear
  when something outside the engine damaged the directory.

Hit/miss/write totals are observable as ``jobs.cache.*`` counters once
:meth:`ResultCache.bind_telemetry` is called (the scheduler does this
whenever the sweep has a telemetry handle).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.common.errors import ReproError
from repro.jobs.spec import JobSpec
from repro.sim.metrics import WorkloadSchemeResult
from repro.sim.store import atomic_write_text, result_from_dict, result_to_dict

#: On-disk entry layout version; bump to invalidate every cached result.
CACHE_FORMAT_VERSION = 1


class ResultCache:
    """Fingerprint-addressed store of workload/scheme results."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        try:
            self.root.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise ReproError(
                f"cannot create result cache at {self.root}: {exc}"
            ) from exc
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self._registry = None

    def bind_telemetry(self, registry) -> None:
        """Mirror hit/miss/write totals onto ``jobs.cache.*`` counters."""
        self._registry = registry
        registry.counter("jobs.cache.hits")
        registry.counter("jobs.cache.misses")
        registry.counter("jobs.cache.writes")

    def _count(self, name: str) -> None:
        if self._registry is not None:
            self._registry.counter(f"jobs.cache.{name}").inc()

    def path_for(self, fingerprint: str) -> Path:
        """On-disk location of one fingerprint's entry."""
        return self.root / f"{fingerprint}.json"

    def get(self, spec: JobSpec) -> WorkloadSchemeResult | None:
        """The cached result for ``spec``, or None on a miss.

        Stale-version, corrupt and unreadable entries all count as
        misses: the cache is an accelerator, and rerunning the cell is
        always safe.
        """
        path = self.path_for(spec.fingerprint())
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            self.misses += 1
            self._count("misses")
            return None
        if (
            not isinstance(payload, dict)
            or payload.get("format_version") != CACHE_FORMAT_VERSION
        ):
            self.misses += 1
            self._count("misses")
            return None
        try:
            result = result_from_dict(payload["result"])
        except (KeyError, TypeError, ValueError, ReproError):
            self.misses += 1
            self._count("misses")
            return None
        self.hits += 1
        self._count("hits")
        return result

    def put(self, spec: JobSpec, result: WorkloadSchemeResult) -> None:
        """Persist one result under its spec's fingerprint (atomic)."""
        fingerprint = spec.fingerprint()
        payload = {
            "format_version": CACHE_FORMAT_VERSION,
            "fingerprint": fingerprint,
            "spec": spec.to_dict(),
            "result": result_to_dict(result),
        }
        atomic_write_text(self.path_for(fingerprint), json.dumps(payload))
        self.writes += 1
        self._count("writes")

    def corrupt(self, spec: JobSpec) -> None:
        """Overwrite ``spec``'s entry with a truncated payload.

        Chaos-harness support (``corrupt`` rules in
        :mod:`repro.jobs.chaos`): simulates a writer that died mid-file
        or a damaged disk.  The invariant under test is that the next
        :meth:`get` treats the mangled entry as a miss — the cell
        re-executes — rather than raising.  Deliberately bypasses the
        atomic-write path; a missing entry is left missing.
        """
        path = self.path_for(spec.fingerprint())
        if not path.exists():
            return
        path.write_text('{"format_version":', encoding="utf-8")

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.json"))
