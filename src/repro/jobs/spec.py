"""Job specifications: the identity of one schedulable stage-2 run.

A :class:`JobSpec` is a frozen, JSON-serialisable description of
everything that determines a :class:`~repro.sim.metrics.WorkloadSchemeResult`:
the workload content (name *and* per-core app assignment), the NUCA
scheme, the experiment seed, the instruction budget, the full
configuration signature (see :func:`repro.config.full_signature`) and
the fault-injection point.  Its
:meth:`~JobSpec.fingerprint` is a stable content hash over exactly those
fields — the key of the on-disk :class:`~repro.jobs.cache.ResultCache`
and the unit of the resume :class:`~repro.jobs.journal.SweepJournal`.

Two runs with equal fingerprints are the same experiment: per-job
randomness derives from ``(seed, workload, scheme)`` via
:func:`repro.common.rng.derive_rng`, so the hash needs no process- or
host-dependent salt.  ``SPEC_FORMAT_VERSION`` is folded into the hash;
bumping it (when the simulation's semantics change incompatibly)
invalidates every cached result at once.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass

from repro.common.errors import ReproError
from repro.config import FaultConfig, SystemConfig, full_signature
from repro.trace.workloads import Workload

#: Version folded into every fingerprint; bump on semantic changes.
#: v2: spec identity switched from the stage-1 signature to the *full*
#: config signature (every field), so design-space search points that
#: differ only in stage-2 knobs (cluster size, replacement policy, way
#: limits, ReRAM timing, ...) can no longer alias in the result cache.
SPEC_FORMAT_VERSION = 2


def fault_to_dict(fault: FaultConfig) -> dict:
    """Plain-JSON view of a fault configuration (stable key order)."""
    return {
        "age_fraction": fault.age_fraction,
        "transient_rate": fault.transient_rate,
        "bank_failures": [
            [int(bank), float(age)] for bank, age in fault.bank_failures
        ],
        "remap_penalty_cycles": fault.remap_penalty_cycles,
        "fault_seed": fault.fault_seed,
    }


def fault_from_dict(data: dict) -> FaultConfig:
    """Inverse of :func:`fault_to_dict`."""
    try:
        return FaultConfig(
            age_fraction=float(data["age_fraction"]),
            transient_rate=float(data["transient_rate"]),
            bank_failures=tuple(
                (int(bank), float(age)) for bank, age in data["bank_failures"]
            ),
            remap_penalty_cycles=int(data["remap_penalty_cycles"]),
            fault_seed=(
                None if data["fault_seed"] is None else int(data["fault_seed"])
            ),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ReproError(f"malformed fault payload: {exc}") from exc


@dataclass(frozen=True)
class JobSpec:
    """Identity of one (workload, scheme) stage-2 simulation."""

    workload: str
    apps: tuple[str, ...]
    scheme: str
    seed: int | None
    n_instructions: int
    config_signature: tuple
    fault: FaultConfig | None = None

    def __post_init__(self) -> None:
        if not self.apps:
            raise ReproError(f"job {self.workload}/{self.scheme}: no apps")
        if self.n_instructions <= 0:
            raise ReproError(
                f"job {self.workload}/{self.scheme}: instruction budget "
                "must be positive"
            )
        if self.fault is not None and not self.fault.active:
            # Normalise: an inactive fault point runs exactly like the
            # pristine machine, so it must hash (and cache) identically.
            object.__setattr__(self, "fault", None)

    @classmethod
    def for_run(
        cls,
        workload: Workload,
        scheme: str,
        config: SystemConfig,
        *,
        seed: int | None,
        n_instructions: int,
        fault_config: FaultConfig | None = None,
    ) -> "JobSpec":
        """Spec of the job :func:`repro.sim.runner.run_workload` would run."""
        return cls(
            workload=workload.name,
            apps=tuple(workload.apps),
            scheme=scheme,
            seed=seed,
            n_instructions=int(n_instructions),
            config_signature=full_signature(config),
            fault=fault_config,
        )

    def to_workload(self) -> Workload:
        """Rebuild the workload object (validates the app names)."""
        return Workload(name=self.workload, apps=self.apps)

    def to_dict(self) -> dict:
        """Plain-JSON representation (also the fingerprint pre-image)."""
        return {
            "format": SPEC_FORMAT_VERSION,
            "workload": self.workload,
            "apps": list(self.apps),
            "scheme": self.scheme,
            "seed": self.seed,
            "n_instructions": self.n_instructions,
            "config_signature": list(self.config_signature),
            "fault": None if self.fault is None else fault_to_dict(self.fault),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "JobSpec":
        """Inverse of :meth:`to_dict`.

        Raises:
            ReproError: for a missing field or an unsupported format
                version (the spec layout is part of the cache contract).
        """
        try:
            version = data["format"]
            if version != SPEC_FORMAT_VERSION:
                raise ReproError(
                    f"unsupported job spec format {version!r} "
                    f"(expected {SPEC_FORMAT_VERSION})"
                )
            return cls(
                workload=str(data["workload"]),
                apps=tuple(str(app) for app in data["apps"]),
                scheme=str(data["scheme"]),
                seed=None if data["seed"] is None else int(data["seed"]),
                n_instructions=int(data["n_instructions"]),
                config_signature=tuple(data["config_signature"]),
                fault=(
                    None if data["fault"] is None
                    else fault_from_dict(data["fault"])
                ),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ReproError(f"malformed job spec payload: {exc}") from exc

    def fingerprint(self) -> str:
        """Stable content hash of this job (hex SHA-256).

        Canonical form: the :meth:`to_dict` payload serialised with
        sorted keys and no whitespace.  Every field that can change the
        simulation's outcome is in the payload, and nothing else is, so
        equal fingerprints mean interchangeable results.
        """
        canonical = json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def retry_delay_s(self, attempt: int, *, base_s: float) -> float:
        """Backoff before retry ``attempt`` (zero-based): exponential
        with deterministic jitter.

        The delay is ``base_s * 2**attempt * (0.5 + jitter/2)`` with the
        jitter in ``[0, 1)`` derived from this spec's fingerprint and
        the attempt number — no wall clock, no global RNG — so two jobs
        whose first attempts fail together de-synchronise their retries,
        yet a rerun of the same sweep backs off identically (tests stay
        reproducible).
        """
        if base_s <= 0.0 or attempt < 0:
            return 0.0
        seed = f"{self.fingerprint()}:retry:{attempt}".encode("utf-8")
        digest = hashlib.sha256(seed).digest()
        jitter = int.from_bytes(digest[:4], "big") / 2**32
        return base_s * (2.0 ** attempt) * (0.5 + jitter / 2.0)

    def label(self) -> str:
        """Short human-readable job name for logs and errors."""
        suffix = ""
        if self.fault is not None:
            suffix = f"@age{self.fault.age_fraction:g}"
        return f"{self.workload}/{self.scheme}{suffix}"
