"""Structured event tracing with bounded retention and JSONL export.

An :class:`EventTrace` is a ring buffer of :class:`TraceEvent` records.
Components emit events with a dotted *kind* (``llc.hit``,
``cpt.predict``, ``tlb.mbv_flip``, ``fault.remap``) plus arbitrary
scalar fields; the buffer keeps the most recent ``capacity`` events and
counts what it dropped, so tracing a long run is safe by construction.

The on-disk format is JSON Lines — one JSON object per event with the
reserved keys ``seq`` (emission order), ``kind`` and ``ts`` (simulated
cycle, or null) and every other field inlined.  :func:`load_events`
round-trips the file back to :class:`TraceEvent` objects and validates
the schema, raising :class:`~repro.telemetry.registry.TelemetryError`
on malformed input.

Overhead discipline: an ``EventTrace`` only exists when the caller asked
for tracing.  Instrumented components hold ``trace = None`` by default
and guard every emission with ``if trace is not None`` — the disabled
cost is one attribute test, never a call.
"""

from __future__ import annotations

import json
from collections import deque
from collections.abc import Iterable
from dataclasses import dataclass, field
from pathlib import Path

from repro.telemetry.registry import TelemetryError

#: Reserved field names every serialised event carries.
RESERVED_FIELDS = ("seq", "kind", "ts")

#: Event kinds the instrumented simulator emits (emission is open —
#: any dotted kind is legal — but these are the documented vocabulary).
KNOWN_KINDS = frozenset({
    "llc.hit",
    "llc.miss",
    "llc.writeback",
    "llc.migration",
    "llc.fill_skipped",
    "cpt.predict",
    "tlb.mbv_flip",
    "fault.remap",
    "fault.transient",
    "fault.derived",
    "run.interval",
})

_SCALAR_TYPES = (bool, int, float, str, type(None))


@dataclass(frozen=True)
class TraceEvent:
    """One structured trace record."""

    seq: int
    kind: str
    ts: float | None = None
    fields: dict = field(default_factory=dict)

    def to_json(self) -> dict:
        """Flat JSON-able dict (reserved keys first, fields inlined)."""
        out = {"seq": self.seq, "kind": self.kind, "ts": self.ts}
        out.update(self.fields)
        return out


class EventTrace:
    """Bounded, append-only event sink.

    Args:
        capacity: maximum retained events; older ones are dropped (and
            counted in :attr:`dropped`) once the buffer is full.
    """

    def __init__(self, capacity: int = 65536) -> None:
        if capacity <= 0:
            raise TelemetryError("event trace capacity must be positive")
        self.capacity = capacity
        self._events: deque[TraceEvent] = deque(maxlen=capacity)
        self._seq = 0
        #: Events discarded because the ring buffer was full.
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._events)

    @property
    def emitted(self) -> int:
        """Total events emitted (retained + dropped)."""
        return self._seq

    def emit(self, kind: str, ts: float | None = None, **fields) -> None:
        """Append one event.

        ``fields`` must be JSON scalars (numbers, strings, bools, None);
        anything else would not round-trip through the JSONL export.
        """
        for key, value in fields.items():
            if key in RESERVED_FIELDS:
                raise TelemetryError(f"event field {key!r} is reserved")
            if not isinstance(value, _SCALAR_TYPES):
                raise TelemetryError(
                    f"event field {key}={value!r} is not a JSON scalar"
                )
        if len(self._events) == self.capacity:
            self.dropped += 1
        self._events.append(TraceEvent(self._seq, kind, ts, fields))
        self._seq += 1

    def events(self, kind: str | None = None) -> list[TraceEvent]:
        """Retained events, optionally filtered by exact kind."""
        if kind is None:
            return list(self._events)
        return [event for event in self._events if event.kind == kind]

    def clear(self) -> None:
        """Drop retained events (sequence numbering continues)."""
        self._events.clear()

    def merge(
        self,
        events: Iterable[TraceEvent],
        *,
        extra: dict | None = None,
    ) -> int:
        """Re-emit events captured elsewhere (e.g. in a worker process).

        Each event keeps its kind, timestamp and fields but is assigned a
        fresh local sequence number; ``extra`` fields are added only
        where the event does not already carry them (the sweep scheduler
        stamps ``workload``/``scheme`` this way).  Returns the number of
        events merged.
        """
        count = 0
        for event in events:
            fields = dict(event.fields)
            if extra:
                for key, value in extra.items():
                    fields.setdefault(key, value)
            self.emit(event.kind, ts=event.ts, **fields)
            count += 1
        return count

    def export_jsonl(
        self,
        path: str | Path,
        *,
        append: bool = False,
        extra: dict | None = None,
    ) -> int:
        """Write retained events as JSON Lines; returns the event count.

        ``extra`` fields (e.g. ``{"scheme": "Re-NUCA"}``) are stamped
        onto every exported record, letting several runs share one file.
        """
        mode = "a" if append else "w"
        count = 0
        with open(path, mode, encoding="utf-8") as fh:
            for event in self._events:
                record = event.to_json()
                if extra:
                    for key, value in extra.items():
                        record.setdefault(key, value)
                fh.write(json.dumps(record) + "\n")
                count += 1
        return count


def load_events(path: str | Path) -> list[TraceEvent]:
    """Read a JSONL trace written by :meth:`EventTrace.export_jsonl`.

    Raises:
        TelemetryError: unreadable file, malformed JSON, or a record
            violating the event schema (missing/ill-typed ``seq``,
            ``kind`` or ``ts``).
    """
    try:
        text = Path(path).read_text(encoding="utf-8")
    except OSError as exc:
        raise TelemetryError(f"cannot read trace file {path}: {exc}") from exc
    events: list[TraceEvent] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise TelemetryError(
                f"{path}:{lineno}: malformed JSON: {exc}"
            ) from exc
        if not isinstance(record, dict):
            raise TelemetryError(f"{path}:{lineno}: event is not an object")
        seq = record.pop("seq", None)
        kind = record.pop("kind", None)
        ts = record.pop("ts", None)
        if not isinstance(seq, int) or isinstance(seq, bool) or seq < 0:
            raise TelemetryError(f"{path}:{lineno}: bad or missing 'seq'")
        if not isinstance(kind, str) or not kind:
            raise TelemetryError(f"{path}:{lineno}: bad or missing 'kind'")
        if ts is not None and not isinstance(ts, (int, float)):
            raise TelemetryError(f"{path}:{lineno}: 'ts' must be a number or null")
        events.append(TraceEvent(seq, kind, None if ts is None else float(ts), record))
    return events
