"""The statistics registry: named counters, gauges and histograms.

Components register instruments *lazily* under hierarchical dotted
names (``llc.bank3.writes``, ``cpt.mispredicts``): the first
``counter()``/``gauge()``/``histogram()`` call for a name creates the
instrument, later calls return the same object, and a name can never
change kind.  The registry itself is pure bookkeeping — the cost of an
instrument is paid only by the component that increments it, so a
simulation run that never asks for telemetry carries no registry at all.

``snapshot()`` flattens everything to plain scalars (histograms expand
to ``name.count`` / ``name.mean`` / ...), which is what the interval
dumper records and the store persists.
"""

from __future__ import annotations

import re
from collections import deque
from collections.abc import Callable

import numpy as np

from repro.common.errors import ReproError
from repro.common.stats import RunningStats

#: Observations retained per histogram for percentile summaries.  The
#: Welford moments are exact over the whole stream; percentiles are
#: computed over a sliding window of the most recent observations so a
#: histogram's memory stays bounded on arbitrarily long runs.
PERCENTILE_WINDOW = 4096

#: Percentiles exposed by :meth:`StatsRegistry.snapshot` (as ``name.pNN``).
PERCENTILES = (50, 90, 99)

#: Hierarchical instrument names: dotted lowercase segments, each
#: starting with a letter (``llc.bank3.writes``).
_NAME_RE = re.compile(r"^[a-z][a-z0-9_-]*(\.[a-z][a-z0-9_-]*)*$")


class TelemetryError(ReproError):
    """A telemetry instrument or trace file was used inconsistently."""


def check_name(name: str) -> str:
    """Validate one hierarchical instrument name (returned unchanged)."""
    if not _NAME_RE.match(name):
        raise TelemetryError(
            f"bad instrument name {name!r} (want dotted lowercase segments, "
            "e.g. 'llc.bank3.writes')"
        )
    return name


class Counter:
    """A monotonically increasing event count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (default 1) occurrences."""
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A point-in-time value, either set directly or read via callback.

    A callback gauge (``fn`` given) is evaluated at snapshot time — the
    cheapest way to expose state a component already maintains (e.g. a
    wear tracker's per-bank write counters) without double counting.
    """

    __slots__ = ("name", "value", "fn")

    def __init__(self, name: str, fn: Callable[[], float] | None = None) -> None:
        self.name = name
        self.value = 0.0
        self.fn = fn

    def set(self, value: float) -> None:
        """Record the current value (direct gauges only)."""
        self.value = value

    def read(self) -> float:
        """Current value (evaluates the callback when one is bound)."""
        if self.fn is not None:
            return float(self.fn())
        return float(self.value)

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self.read()})"


class Histogram:
    """A :class:`~repro.common.stats.RunningStats`-backed distribution.

    Besides the exact streaming moments, the most recent
    :data:`PERCENTILE_WINDOW` observations are retained so snapshots can
    report p50/p90/p99 summaries with bounded memory.
    """

    __slots__ = ("name", "stats", "recent")

    def __init__(self, name: str) -> None:
        self.name = name
        self.stats = RunningStats()
        self.recent: deque[float] = deque(maxlen=PERCENTILE_WINDOW)

    def observe(self, value: float) -> None:
        """Fold one observation into the distribution."""
        self.stats.add(value)
        self.recent.append(value)

    def percentiles(self) -> dict[int, float]:
        """p50/p90/p99 over the retained window (empty when no samples)."""
        if not self.recent:
            return {}
        values = np.fromiter(self.recent, dtype=np.float64)
        levels = np.percentile(values, PERCENTILES)
        return {p: float(v) for p, v in zip(PERCENTILES, levels)}

    def __repr__(self) -> str:
        return f"Histogram({self.name}, n={self.stats.count})"


class StatsRegistry:
    """Name -> instrument map with lazy, kind-checked registration."""

    def __init__(self) -> None:
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}

    def __len__(self) -> int:
        return len(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def names(self) -> list[str]:
        """All registered names, sorted."""
        return sorted(self._instruments)

    def _get(self, name: str, kind: type) -> Counter | Gauge | Histogram | None:
        existing = self._instruments.get(name)
        if existing is None:
            return None
        if not isinstance(existing, kind):
            raise TelemetryError(
                f"instrument {name!r} is a {type(existing).__name__}, "
                f"not a {kind.__name__}"
            )
        return existing

    def counter(self, name: str) -> Counter:
        """Fetch (or lazily create) the counter called ``name``."""
        existing = self._get(name, Counter)
        if existing is None:
            existing = self._instruments[check_name(name)] = Counter(name)
        return existing

    def gauge(self, name: str, fn: Callable[[], float] | None = None) -> Gauge:
        """Fetch (or lazily create) the gauge called ``name``.

        Re-registering with a new callback rebinds it — a fresh component
        instance (one LLC per stage-2 run) takes over the name.
        """
        existing = self._get(name, Gauge)
        if existing is None:
            existing = self._instruments[check_name(name)] = Gauge(name, fn)
        elif fn is not None:
            existing.fn = fn
        return existing

    def histogram(self, name: str) -> Histogram:
        """Fetch (or lazily create) the histogram called ``name``."""
        existing = self._get(name, Histogram)
        if existing is None:
            existing = self._instruments[check_name(name)] = Histogram(name)
        return existing

    # -- cross-process merging ----------------------------------------------

    def export_state(self) -> dict[str, tuple[str, object]]:
        """Kind-tagged instrument dump for cross-process merging.

        Unlike :meth:`snapshot` (which flattens histograms into scalar
        summaries), this keeps enough structure for a lossless
        :meth:`merge_state` on another registry: counters carry their
        count, gauges their current reading, histograms their full
        Welford state.  Everything is plain picklable data, so a worker
        process can ship its registry back to the parent sweep.
        """
        state: dict[str, tuple[str, object]] = {}
        for name, instrument in self._instruments.items():
            if isinstance(instrument, Counter):
                state[name] = ("counter", instrument.value)
            elif isinstance(instrument, Gauge):
                state[name] = ("gauge", instrument.read())
            else:
                stats = instrument.stats
                state[name] = ("histogram", {
                    "count": stats.count,
                    "mean": stats.mean,
                    "m2": stats._m2,
                    "min": stats.min,
                    "max": stats.max,
                    "recent": list(instrument.recent),
                })
        return state

    def merge_state(self, state: dict[str, tuple[str, object]]) -> None:
        """Fold another registry's :meth:`export_state` into this one.

        Counters accumulate, gauges take the merged value (so repeated
        merges behave like the serial "most recent run wins" contract as
        long as states are merged in run order), histograms merge their
        distributions.  Instruments are created lazily with the incoming
        kind; merging into an existing instrument of a different kind
        raises :class:`TelemetryError` (same rule as registration).
        """
        for name in sorted(state):
            kind, value = state[name]
            if kind == "counter":
                self.counter(name).inc(value)
            elif kind == "gauge":
                self.gauge(name).set(float(value))
            elif kind == "histogram":
                histogram = self.histogram(name)
                histogram.stats = histogram.stats.merge(RunningStats(
                    count=value["count"],
                    mean=value["mean"],
                    _m2=value["m2"],
                    min=value["min"],
                    max=value["max"],
                ))
                # Older exports lack the sample window; percentile
                # summaries then cover only locally observed values.
                histogram.recent.extend(value.get("recent", ()))
            else:
                raise TelemetryError(
                    f"unknown instrument kind {kind!r} for {name!r}"
                )

    # -- reading ------------------------------------------------------------

    def snapshot(self) -> dict[str, float]:
        """Flatten every instrument to scalars (histograms expand)."""
        out: dict[str, float] = {}
        for name in sorted(self._instruments):
            instrument = self._instruments[name]
            if isinstance(instrument, Counter):
                out[name] = float(instrument.value)
            elif isinstance(instrument, Gauge):
                out[name] = instrument.read()
            else:
                stats = instrument.stats
                out[f"{name}.count"] = float(stats.count)
                out[f"{name}.mean"] = stats.mean
                out[f"{name}.stddev"] = stats.stddev
                # The quantiles cover the bounded sample window, not
                # the whole stream; exposing its length lets consumers
                # (the Prometheus endpoint's ``_count``/``_window``
                # pair) state exactly what the percentiles summarise.
                out[f"{name}.window"] = float(len(instrument.recent))
                if stats.count:
                    out[f"{name}.min"] = stats.min
                    out[f"{name}.max"] = stats.max
                for level, value in instrument.percentiles().items():
                    out[f"{name}.p{level}"] = value
        return out

    def subtree(self, prefix: str) -> dict[str, float]:
        """Snapshot restricted to ``prefix`` and its descendants."""
        check_name(prefix)
        dotted = prefix + "."
        return {
            name: value
            for name, value in self.snapshot().items()
            if name == prefix or name.startswith(dotted)
        }

    def render(self) -> str:
        """Human-readable dump (one ``name = value`` line per scalar)."""
        snap = self.snapshot()
        if not snap:
            return "(no instruments registered)"
        width = max(len(name) for name in snap)
        lines = []
        for name, value in snap.items():
            if float(value).is_integer():
                lines.append(f"{name:<{width}} = {int(value)}")
            else:
                lines.append(f"{name:<{width}} = {value:.4f}")
        return "\n".join(lines)
