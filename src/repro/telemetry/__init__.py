"""Telemetry: counters/gauges/histograms, event tracing, interval dumps
and phase profiling for the NUCA simulation pipeline.

One :class:`Telemetry` handle bundles the four facilities and is
threaded through :func:`~repro.sim.runner.run_workload`; every
instrumented component (:class:`~repro.nuca.llc.NucaLLC`, the mapping
policies, the criticality predictor, the enhanced TLB, the wear tracker,
the fault injector, the mesh) takes the handle as an optional argument
and does **nothing** when it is absent — the un-instrumented hot path is
byte-for-byte the pre-telemetry code plus one ``is None`` test per
guarded block (see ``benchmarks/test_bench_telemetry_overhead.py`` for
the enforced bound, and ``docs/OBSERVABILITY.md`` for the full contract).

Quick start::

    from repro import System, Telemetry

    tel = Telemetry(trace=True, interval_instructions=5_000, profile=True)
    result = System(seed=1).run(0, "Re-NUCA", telemetry=tel)
    print(tel.registry.render())            # counter/gauge summary
    print(result.intervals.bank_write_matrix())   # wear time series
    tel.trace.export_jsonl("events.jsonl")  # structured event log
    print(tel.profiler.report())            # where the wall time went
"""

from __future__ import annotations

from repro.telemetry.events import (
    KNOWN_KINDS,
    EventTrace,
    TraceEvent,
    load_events,
)
from repro.telemetry.intervals import IntervalSeries
from repro.telemetry.profiler import DISABLED_PROFILER, Profiler
from repro.telemetry.registry import (
    Counter,
    Gauge,
    Histogram,
    StatsRegistry,
    TelemetryError,
)

__all__ = [
    "KNOWN_KINDS",
    "EventTrace",
    "TraceEvent",
    "load_events",
    "IntervalSeries",
    "DISABLED_PROFILER",
    "Profiler",
    "Counter",
    "Gauge",
    "Histogram",
    "StatsRegistry",
    "TelemetryError",
    "Telemetry",
]

#: Default ring-buffer capacity of the event trace.
DEFAULT_TRACE_CAPACITY = 65536


class Telemetry:
    """One run's observability bundle.

    Args:
        trace: enable structured event tracing (off by default — events
            on the hot path are the costliest instrument).
        trace_capacity: ring-buffer retention when tracing is enabled.
        interval_instructions: snapshot the registry every N committed
            instructions (0 disables interval dumps).
        profile: enable the nested phase profiler.
        spans: enable span tracing (``True`` for a fresh
            :class:`~repro.obs.spans.SpanRecorder`, or pass a recorder
            to share a sweep-wide trace id and sink).

    The registry is always live — counters and gauges are cheap and the
    summary they feed is the point of asking for telemetry at all.
    """

    def __init__(
        self,
        *,
        trace: bool = False,
        trace_capacity: int = DEFAULT_TRACE_CAPACITY,
        interval_instructions: int = 0,
        profile: bool = False,
        spans=False,
    ) -> None:
        if interval_instructions < 0:
            raise TelemetryError("interval_instructions must be >= 0")
        self.registry = StatsRegistry()
        self.trace: EventTrace | None = (
            EventTrace(trace_capacity) if trace else None
        )
        self.interval_instructions = interval_instructions
        self.profiler = Profiler(enabled=profile)
        if spans is False or spans is None:
            self.spans = None
        elif spans is True:
            # Local import: repro.obs.spans has no telemetry imports,
            # but keeping it lazy spares every un-instrumented run the
            # module load.
            from repro.obs.spans import SpanRecorder

            self.spans = SpanRecorder()
        else:
            self.spans = spans

    def phase(self, name: str):
        """Shorthand for ``telemetry.profiler.phase(name)``."""
        return self.profiler.phase(name)

    def counter(self, name: str) -> Counter:
        """Shorthand for ``telemetry.registry.counter(name)``."""
        return self.registry.counter(name)

    def summary(self) -> str:
        """Registry dump plus trace/profile one-liners."""
        lines = [self.registry.render()]
        if self.trace is not None:
            lines.append(
                f"trace: {len(self.trace)} events retained "
                f"({self.trace.emitted} emitted, {self.trace.dropped} dropped)"
            )
        if self.profiler.enabled:
            lines.append(self.profiler.report())
        return "\n".join(lines)
