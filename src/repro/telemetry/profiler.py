"""Nested wall-clock phase timers (the ``--profile`` machinery).

A :class:`Profiler` accumulates ``perf_counter`` time under a stack of
named phases (``stage1`` / ``warm-up`` / ``measure`` / ``reduce``), so a
run can report where its wall time went::

    with profiler.phase("measure"):
        ...
        with profiler.phase("cpt"):
            ...

Phases nest: the report shows each path with its inclusive time, call
count and share of the root.  A disabled profiler short-circuits to a
shared no-op context manager — entering a phase costs one attribute
check, which is what lets the runner keep its ``with`` blocks in place
unconditionally.
"""

from __future__ import annotations

import time
from contextlib import contextmanager

from repro.telemetry.registry import TelemetryError


class _NullContext:
    """Reusable no-op context manager (cheaper than contextlib.nullcontext)."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


_NULL = _NullContext()


class Profiler:
    """Hierarchical phase timing keyed by dotted phase paths."""

    def __init__(self, *, enabled: bool = True) -> None:
        self.enabled = enabled
        # path tuple -> [calls, inclusive seconds]
        self._acc: dict[tuple[str, ...], list] = {}
        self._stack: list[str] = []

    def phase(self, name: str):
        """Context manager timing one (possibly nested) phase."""
        if not self.enabled:
            return _NULL
        if not name or "/" in name:
            raise TelemetryError(f"bad phase name {name!r}")
        return self._timed(name)

    @contextmanager
    def _timed(self, name: str):
        self._stack.append(name)
        path = tuple(self._stack)
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            entry = self._acc.get(path)
            if entry is None:
                self._acc[path] = [1, elapsed]
            else:
                entry[0] += 1
                entry[1] += elapsed
            self._stack.pop()

    # -- cross-process merging ----------------------------------------------

    def export_state(self) -> list[tuple[list[str], int, float]]:
        """Picklable ``(path, calls, seconds)`` dump for cross-process merging.

        A sweep worker exports its profiler this way so the parent can
        fold the timings in with :meth:`merge_state` — without it,
        parallel runs would silently drop every phase timed inside the
        worker processes.
        """
        return [
            [list(path), acc[0], acc[1]]
            for path, acc in sorted(self._acc.items())
        ]

    def merge_state(self, state: list[tuple[list[str], int, float]]) -> None:
        """Accumulate another profiler's :meth:`export_state` into this one.

        Call counts and inclusive seconds add up per phase path, so the
        merged report reads as total worker-side wall time (which can
        exceed the parent's elapsed time when workers run concurrently).
        """
        for path, calls, seconds in state:
            key = tuple(path)
            entry = self._acc.get(key)
            if entry is None:
                self._acc[key] = [int(calls), float(seconds)]
            else:
                entry[0] += int(calls)
                entry[1] += float(seconds)

    def totals(self) -> dict[str, float]:
        """Inclusive seconds per phase path ("a/b" for nested phases)."""
        return {"/".join(path): acc[1] for path, acc in sorted(self._acc.items())}

    def calls(self) -> dict[str, int]:
        """Invocation count per phase path."""
        return {"/".join(path): acc[0] for path, acc in sorted(self._acc.items())}

    def reset(self) -> None:
        """Drop accumulated timings (must not be inside a phase)."""
        if self._stack:
            raise TelemetryError("cannot reset a profiler inside an open phase")
        self._acc.clear()

    def report(self) -> str:
        """Indented text tree: time, calls and share of the total."""
        if not self._acc:
            return "(no phases recorded)"
        root_total = sum(
            seconds for path, (_c, seconds) in self._acc.items() if len(path) == 1
        )
        lines = [f"{'phase':<32} {'time':>10} {'calls':>7} {'share':>7}"]
        for path in sorted(self._acc):
            calls, seconds = self._acc[path]
            label = "  " * (len(path) - 1) + path[-1]
            share = seconds / root_total if root_total > 0 else 0.0
            lines.append(
                f"{label:<32} {seconds:>9.3f}s {calls:>7d} {share:>6.1%}"
            )
        return "\n".join(lines)


#: Shared disabled profiler: components that were not handed a telemetry
#: object time against this and pay only the ``enabled`` check.
DISABLED_PROFILER = Profiler(enabled=False)
