"""gem5-style interval dumps: periodic registry snapshots over a run.

Every N instructions (``Telemetry.interval_instructions``) the runner
snapshots the whole :class:`~repro.telemetry.registry.StatsRegistry`
into an :class:`IntervalSeries` — the time-series view of a simulation:
per-bank write counts, LLC hit/miss counters, degradation counters, all
sampled on a common instruction axis.  Snapshots store *cumulative*
values (exactly what the instruments hold); :meth:`IntervalSeries.deltas`
and :meth:`IntervalSeries.bank_write_matrix` derive the per-interval
view the wear heatmap wants.

The series round-trips through plain dicts (:meth:`IntervalSeries.to_dict`
/ :meth:`IntervalSeries.from_dict`) so :mod:`repro.sim.store` can persist
it inside a result file.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

import numpy as np

from repro.telemetry.registry import TelemetryError

_BANK_WRITES_RE = re.compile(r"^llc\.bank(\d+)\.writes$")


@dataclass
class IntervalSeries:
    """Registry snapshots taken every ``interval_instructions``."""

    interval_instructions: int
    #: Cumulative stage-2 LLC accesses replayed at each snapshot.
    accesses: list[int] = field(default_factory=list)
    #: Approximate cumulative committed instructions at each snapshot.
    instructions: list[int] = field(default_factory=list)
    #: Simulated cycle of each snapshot.
    cycles: list[float] = field(default_factory=list)
    #: One flat registry snapshot (cumulative scalars) per interval.
    samples: list[dict[str, float]] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.samples)

    def record(
        self,
        *,
        accesses: int,
        instructions: int,
        cycles: float,
        sample: dict[str, float],
    ) -> None:
        """Append one snapshot (the runner calls this on the hot loop)."""
        self.accesses.append(int(accesses))
        self.instructions.append(int(instructions))
        self.cycles.append(float(cycles))
        self.samples.append(dict(sample))

    # -- derived views -------------------------------------------------------

    def names(self) -> list[str]:
        """Instrument names present in any snapshot, sorted."""
        seen: set[str] = set()
        for sample in self.samples:
            seen.update(sample)
        return sorted(seen)

    def series(self, name: str) -> list[float]:
        """Cumulative values of one instrument across intervals."""
        if not self.samples:
            raise TelemetryError("interval series is empty")
        return [float(sample.get(name, 0.0)) for sample in self.samples]

    def deltas(self, name: str) -> list[float]:
        """Per-interval increments of one (cumulative) instrument."""
        values = self.series(name)
        return [b - a for a, b in zip([0.0, *values], values)]

    def bank_write_names(self) -> list[str]:
        """``llc.bankN.writes`` names in bank order."""
        found: list[tuple[int, str]] = []
        for name in self.names():
            match = _BANK_WRITES_RE.match(name)
            if match:
                found.append((int(match.group(1)), name))
        return [name for _idx, name in sorted(found)]

    def bank_write_matrix(self) -> np.ndarray:
        """Per-interval per-bank write counts, shape (intervals, banks).

        Raises:
            TelemetryError: when no per-bank write gauges were sampled
                (the run was not instrumented with a wear tracker).
        """
        names = self.bank_write_names()
        if not names:
            raise TelemetryError(
                "no llc.bankN.writes series in the interval dump"
            )
        return np.column_stack([self.deltas(name) for name in names])

    # -- persistence ---------------------------------------------------------

    def to_dict(self) -> dict:
        """Plain-JSON representation (see :mod:`repro.sim.store`)."""
        return {
            "interval_instructions": self.interval_instructions,
            "accesses": list(self.accesses),
            "instructions": list(self.instructions),
            "cycles": list(self.cycles),
            "samples": [dict(sample) for sample in self.samples],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "IntervalSeries":
        """Inverse of :meth:`to_dict`.

        Raises:
            TelemetryError: for a malformed payload (ragged lists).
        """
        try:
            series = cls(
                interval_instructions=int(data["interval_instructions"]),
                accesses=[int(v) for v in data["accesses"]],
                instructions=[int(v) for v in data["instructions"]],
                cycles=[float(v) for v in data["cycles"]],
                samples=[dict(sample) for sample in data["samples"]],
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise TelemetryError(f"malformed interval series: {exc}") from exc
        lengths = {
            len(series.accesses), len(series.instructions),
            len(series.cycles), len(series.samples),
        }
        if len(lengths) != 1:
            raise TelemetryError("malformed interval series: ragged columns")
        return series
