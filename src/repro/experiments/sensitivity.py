"""Section V-C sensitivity studies (Figures 13-18, Table III rows).

Three variants of the Table I machine are re-evaluated on the full grid:

* ``L2-128KB`` — halved private L2 (more write-backs; Figures 13/14),
* ``L3-1MB``   — halved L3 banks (more misses/fills; Figures 15/16),
* ``ROB-168``  — larger ROB (fewer head stalls; Figures 17/18).

Table III collects the raw minimum lifetime of every scheme under the
baseline plus each variant.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.config import (
    SystemConfig,
    baseline_config,
    sensitivity_l2_128k,
    sensitivity_l3_1m,
    sensitivity_rob_168,
)
from repro.experiments.main_result import ALL_SCHEMES, run_main_matrix
from repro.sim.metrics import MatrixResult
from repro.sim.runner import DEFAULT_INSTRUCTIONS, Stage1Cache

#: Table III row label -> configuration factory.
SENSITIVITY_CONFIGS: dict[str, Callable[[], SystemConfig]] = {
    "Actual Results": baseline_config,
    "L2-128KB": sensitivity_l2_128k,
    "L3-1MB": sensitivity_l3_1m,
    "ROB-168": sensitivity_rob_168,
}


def run_sensitivity(
    variant: str,
    *,
    schemes: tuple[str, ...] = ALL_SCHEMES,
    num_workloads: int = 10,
    seed: int | None = None,
    n_instructions: int = DEFAULT_INSTRUCTIONS,
    stage1: Stage1Cache | None = None,
    progress=None,
) -> MatrixResult:
    """Run the full grid on one Table III configuration row."""
    try:
        factory = SENSITIVITY_CONFIGS[variant]
    except KeyError:
        from repro.common.errors import ConfigError

        raise ConfigError(
            f"unknown sensitivity variant {variant!r}; "
            f"known: {tuple(SENSITIVITY_CONFIGS)}"
        ) from None
    return run_main_matrix(
        factory(),
        schemes=schemes,
        label=variant,
        num_workloads=num_workloads,
        seed=seed,
        n_instructions=n_instructions,
        stage1=stage1,
        progress=progress,
    )


def table3(matrices: dict[str, MatrixResult], schemes=ALL_SCHEMES) -> dict:
    """Assemble Table III: raw minimum lifetimes per config x scheme."""
    return {
        label: {scheme: matrix.raw_min_lifetime(scheme) for scheme in schemes}
        for label, matrix in matrices.items()
    }
