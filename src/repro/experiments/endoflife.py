"""End-of-life study: how each NUCA scheme degrades as ReRAM cells fail.

The paper's lifetime results say *when* the first bank dies; this
experiment shows *what the machine feels like* on the way there.  One
workload is swept over a set of service ages (fraction of nominal cell
endurance consumed by the average bank); at each age the deterministic
fault models retire worn-out frames — hot banks and hot sets first, in
proportion to the wear each scheme actually produced — and the measured
phase runs on the degraded cache.

The headline curve is IPC (and LLC hit rate / effective capacity)
versus age per scheme:

* **R-NUCA** concentrates a core's writes on its 4-bank cluster, so its
  hot banks cross the endurance wall early — capacity collapses where
  the workload needs it most.
* **S-NUCA** wears uniformly; everything degrades together, later.
* **Re-NUCA** wear-levels the non-critical majority of fills while
  keeping critical lines close, so the IPC cliff arrives latest — the
  graceful-degradation version of the paper's "+42% minimum lifetime".

Every run completes regardless of how much of the cache is gone; a
scheduled whole-bank failure degrades to remapping over the survivors.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ReproError
from repro.config import FaultConfig, SystemConfig, baseline_config
from repro.experiments.report import format_table
from repro.sim.metrics import WorkloadSchemeResult
from repro.sim.runner import DEFAULT_INSTRUCTIONS, Stage1Cache
from repro.trace.workloads import make_workloads

#: Default service-age sweep (fractions of nominal cell endurance).
DEFAULT_AGES: tuple[float, ...] = (0.0, 0.5, 0.75, 0.9, 1.0, 1.1)

#: Schemes compared by default (the paper's three headline mappings).
DEFAULT_SCHEMES: tuple[str, ...] = ("S-NUCA", "R-NUCA", "Re-NUCA")


@dataclass(frozen=True)
class AgePoint:
    """One (scheme, age) cell of the degradation sweep."""

    scheme: str
    age: float
    ipc: float
    llc_hit_rate: float
    effective_capacity: float
    dead_banks: int
    remap_traffic: int
    fills_skipped: int
    transient_faults: int

    @classmethod
    def from_result(cls, result: WorkloadSchemeResult) -> "AgePoint":
        """Project the degradation metrics out of a stage-2 result."""
        return cls(
            scheme=result.scheme,
            age=result.age_fraction,
            ipc=result.ipc,
            llc_hit_rate=result.llc_fetch_hit_rate,
            effective_capacity=result.effective_capacity,
            dead_banks=result.dead_banks,
            remap_traffic=result.remap_traffic,
            fills_skipped=result.fills_skipped,
            transient_faults=result.transient_faults,
        )


def run_endoflife(
    *,
    workload_number: int = 1,
    ages: tuple[float, ...] = DEFAULT_AGES,
    schemes: tuple[str, ...] = DEFAULT_SCHEMES,
    config: SystemConfig | None = None,
    seed: int | None = None,
    n_instructions: int = DEFAULT_INSTRUCTIONS,
    stage1: Stage1Cache | None = None,
    stage1_store=None,
    bank_failures: tuple[tuple[int, float], ...] = (),
    transient_rate: float = 0.0,
    progress=None,
    telemetry=None,
    max_workers: int = 1,
    cache_dir=None,
    journal=None,
    resume: bool = False,
    observer=None,
    ledger=None,
    retries: int | None = None,
    job_timeout_s: float | None = None,
    spans=None,
) -> dict[str, list[AgePoint]]:
    """Sweep one workload over cache ages for several schemes.

    Args:
        workload_number: 1-based WL index (as on the CLI).
        ages: service ages to evaluate; 0.0 is the pristine baseline.
        schemes: NUCA schemes to compare.
        bank_failures: scheduled whole-bank failures, applied at every
            age whose value reaches the failure age.
        transient_rate: per-read soft-fault probability.
        progress: optional ``(scheme, age) -> None`` narration callback.
        telemetry: optional shared :class:`~repro.telemetry.Telemetry`
            handle; it sees every (scheme, age) cell, so counters
            accumulate over the sweep and the event ring retains the
            most recent cells.  ``progress`` fires before each cell —
            callers that export traces per cell can flush there (serial
            runs only; with ``max_workers > 1`` the merged events carry
            ``scheme``/``age`` stamps instead).
        max_workers: worker processes for the (scheme, age) cells; 1
            keeps the historical in-process sweep.  Results are
            deterministic either way (see ``docs/SWEEPS.md``).
        cache_dir: optional content-addressed result cache directory.
        stage1_store: optional shared on-disk stage-1 store (a
            :class:`~repro.sim.stage1_store.Stage1Store` or its root
            directory); ages and schemes reuse one characterisation.
        journal: optional completion-journal path enabling ``resume``.
        resume: replay cells already recorded in ``journal``.
        observer: optional live :class:`~repro.obs.progress.JobEvent`
            hook (see ``repro endoflife --progress``).
        ledger: optional :class:`~repro.obs.ledger.RunLedger` (or path)
            receiving one provenance record per resolved cell.
        retries: per-cell retry budget for transient failures (None
            keeps the engine default).
        job_timeout_s: optional watchdog deadline per cell (see
            ``docs/RESILIENCE.md``).

    Returns:
        ``{scheme: [AgePoint per age, in sweep order]}``.

    Raises:
        ReproError: for an out-of-range workload number or empty sweep.
    """
    from repro.jobs.scheduler import DEFAULT_RETRIES, SweepJob, run_jobs
    from repro.jobs.spec import JobSpec

    config = config or baseline_config()
    if not ages:
        raise ReproError("need at least one age to sweep")
    if not schemes:
        raise ReproError("need at least one scheme to compare")
    workloads = make_workloads(num_cores=config.num_cores, seed=seed)
    if not (1 <= workload_number <= len(workloads)):
        raise ReproError(
            f"workload number must be 1..{len(workloads)}, got {workload_number}"
        )
    workload = workloads[workload_number - 1]

    cells = [(scheme, age) for scheme in schemes for age in ages]
    jobs = []
    for scheme, age in cells:
        fault_config = FaultConfig(
            age_fraction=age,
            transient_rate=transient_rate,
            bank_failures=bank_failures,
        )
        jobs.append(SweepJob(
            spec=JobSpec.for_run(
                workload, scheme, config,
                seed=seed, n_instructions=n_instructions,
                fault_config=fault_config if fault_config.active else None,
            ),
            config=config,
        ))

    if progress is not None:
        # Adapt the engine's per-job hook to the historical
        # ``(scheme, age)`` narration signature.  An age>0 point always
        # carries its fault config (age>0 implies an active fault), so a
        # spec without one can only be the age-0.0 pristine cell.
        def _narrate(job) -> None:
            spec = job.spec
            progress(
                spec.scheme,
                spec.fault.age_fraction if spec.fault is not None else 0.0,
            )
    else:
        _narrate = None

    results, _report = run_jobs(
        jobs,
        max_workers=max_workers,
        cache=cache_dir,
        journal=journal,
        resume=resume,
        stage1=stage1,
        stage1_store=stage1_store,
        telemetry=telemetry,
        progress=_narrate,
        observer=observer,
        ledger=ledger,
        retries=DEFAULT_RETRIES if retries is None else retries,
        job_timeout_s=job_timeout_s,
        spans=spans,
    )

    curves: dict[str, list[AgePoint]] = {scheme: [] for scheme in schemes}
    for (scheme, _age), result in zip(cells, results):
        curves[scheme].append(AgePoint.from_result(result))
    return curves


def ipc_cliff_age(points: list[AgePoint], *, drop: float = 0.10) -> float | None:
    """First swept age at which IPC fell ``drop`` below the pristine point.

    None when the curve never crosses the cliff within the sweep (or has
    no pristine baseline to compare against).
    """
    if not points:
        return None
    baseline = points[0].ipc
    if baseline <= 0:
        return None
    for point in points[1:]:
        if point.ipc <= baseline * (1.0 - drop):
            return point.age
    return None


def render_endoflife(curves: dict[str, list[AgePoint]]) -> str:
    """Text report: the degradation table plus IPC-vs-age mini-curves."""
    if not curves:
        raise ReproError("nothing to render")
    rows = []
    for scheme, points in curves.items():
        for p in points:
            rows.append((
                scheme, f"{p.age:.2f}", p.ipc, f"{100 * p.llc_hit_rate:.1f}%",
                f"{100 * p.effective_capacity:.1f}%", p.dead_banks,
                p.remap_traffic, p.fills_skipped, p.transient_faults,
            ))
    table = format_table(
        ["scheme", "age", "IPC", "LLC hit", "capacity", "dead banks",
         "remaps", "skipped fills", "soft faults"],
        rows,
    )
    lines = [table, "", "IPC retention vs. age (100% = pristine):"]
    width = 40
    for scheme, points in curves.items():
        base = points[0].ipc or 1.0
        curve = " ".join(f"{100 * p.ipc / base:5.1f}" for p in points)
        bars = "".join(
            "#" if p.ipc / base >= 0.95 else "+" if p.ipc / base >= 0.85 else "."
            for p in points
        )
        lines.append(f"  {scheme:>8s}  [{bars:<{max(1, min(width, len(points)))}s}]  {curve}")
        cliff = ipc_cliff_age(points)
        lines.append(
            f"  {'':>8s}  10% IPC cliff at age "
            + (f"{cliff:.2f}" if cliff is not None else "> sweep end")
        )
    return "\n".join(lines)
