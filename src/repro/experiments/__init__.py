"""Per-figure/table experiment drivers.

Each module reproduces one artefact of the paper's evaluation and
returns plain data (dicts/arrays); :mod:`repro.experiments.report`
renders them as the text tables the benchmarks print.

==================  =====================================================
module              paper artefact
==================  =====================================================
``table2``          Table II + Figure 2 (per-app WPKI/MPKI/hit/IPC)
``fig5``            Figure 5 (percent of loads that never block the ROB)
``criticality``     Figures 7/8/9 (threshold sweeps on the 8 study apps)
``main_result``     Figures 3, 4b, 11, 12 + Table III baseline row
``sensitivity``     Figures 13-18 + Table III variant rows
``endoflife``       beyond the paper: IPC/capacity vs. cache age under
                    deterministic end-of-life fault injection
==================  =====================================================
"""

from repro.experiments.criticality import run_criticality_sweep
from repro.experiments.endoflife import (
    DEFAULT_AGES,
    run_endoflife,
    render_endoflife,
)
from repro.experiments.fig5 import run_fig5
from repro.experiments.main_result import (
    ALL_SCHEMES,
    MOTIVATION_SCHEMES,
    run_main_matrix,
)
from repro.experiments.sensitivity import SENSITIVITY_CONFIGS, run_sensitivity
from repro.experiments.table2 import run_table2

__all__ = [
    "DEFAULT_AGES",
    "run_criticality_sweep",
    "run_endoflife",
    "render_endoflife",
    "run_fig5",
    "ALL_SCHEMES",
    "MOTIVATION_SCHEMES",
    "run_main_matrix",
    "SENSITIVITY_CONFIGS",
    "run_sensitivity",
    "run_table2",
]
