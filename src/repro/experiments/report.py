"""Plain-text rendering of experiment results (the rows the paper plots)."""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.experiments.table2 import Table2Row
from repro.sim.metrics import MatrixResult


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Simple fixed-width table."""
    cells = [[str(h) for h in headers]] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for idx, row in enumerate(cells):
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
        if idx == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def render_table2(rows: list[Table2Row]) -> str:
    """Table II: measured vs target per application."""
    return format_table(
        ["App", "WPKI", "(tgt)", "MPKI", "(tgt)", "Hit", "(tgt)", "IPC", "(tgt)"],
        [
            (
                r.app, r.wpki, r.target_wpki, r.mpki, r.target_mpki,
                r.hitrate, r.target_hitrate, r.ipc, r.target_ipc,
            )
            for r in rows
        ],
    )


def render_fig2(rows: list[Table2Row]) -> str:
    """Figure 2: WPKI + MPKI per application (descending)."""
    ordered = sorted(rows, key=lambda r: -r.write_intensity)
    return format_table(
        ["App", "WPKI+MPKI", "WPKI", "MPKI"],
        [(r.app, r.write_intensity, r.wpki, r.mpki) for r in ordered],
    )


def render_percent_map(title: str, data: dict[str, float]) -> str:
    """One bar-chart worth of app -> percent values."""
    body = format_table(["App", "%"], list(data.items()))
    avg = float(np.mean(list(data.values())))
    return f"{title}\n{body}\nAverage  {avg:.1f}%"


def render_threshold_sweep(
    title: str, table: dict[str, dict[float, float]], thresholds
) -> str:
    """Figures 7/8/9: apps x thresholds grid plus the Avg row."""
    headers = ["App"] + [f"{t:g}%" for t in thresholds]
    rows = [[app] + [per[t] for t in thresholds] for app, per in table.items()]
    avg = ["Avg"] + [
        float(np.mean([per[t] for per in table.values()])) for t in thresholds
    ]
    return f"{title}\n" + format_table(headers, rows + [avg])


def render_lifetime_bars(matrix: MatrixResult, schemes) -> str:
    """Figures 3/12/13/15/17: per-bank harmonic-mean lifetimes."""
    headers = ["Bank"] + list(schemes)
    per_scheme = {s: matrix.hmean_bank_lifetimes(s) for s in schemes}
    n_banks = len(next(iter(per_scheme.values())))
    rows = [
        [f"CB-{b}"] + [float(per_scheme[s][b]) for s in schemes]
        for b in range(n_banks)
    ]
    return format_table(headers, rows)


def render_ipc_improvements(matrix: MatrixResult, schemes, baseline="S-NUCA") -> str:
    """Figures 11/14/16/18: per-workload IPC improvement over S-NUCA."""
    others = [s for s in schemes if s != baseline]
    headers = ["WL"] + [f"{s} [%]" for s in others]
    rows = []
    for wl in matrix.workloads:
        row = [wl]
        for s in others:
            row.append(matrix.ipc_improvement_over(s, baseline)[wl])
        rows.append(row)
    avg = ["Avg"] + [matrix.mean_ipc_improvement(s, baseline) for s in others]
    return format_table(headers, rows + [avg])


def render_tradeoff(matrix: MatrixResult) -> str:
    """Figure 4b: (IPC, lifetime) point per scheme."""
    points = matrix.tradeoff_points()
    return format_table(
        ["Scheme", "IPC", "H-mean life [y]"],
        [(s, ipc, life) for s, (ipc, life) in points.items()],
    )


def render_table3(table: dict[str, dict[str, float]]) -> str:
    """Table III: raw minimum lifetimes, configs x schemes."""
    schemes = list(next(iter(table.values())).keys())
    headers = ["Config"] + schemes
    rows = [[label] + [vals[s] for s in schemes] for label, vals in table.items()]
    return format_table(headers, rows)
