"""Figure 5: percentage of loads that do not stall the head of the ROB.

The paper's motivation for criticality-aware placement: on average over
80% of all issued loads never block the ROB head, so most cache blocks
can be spread over distant banks without hurting performance.
"""

from __future__ import annotations

from repro.config import SystemConfig, baseline_config
from repro.sim.runner import DEFAULT_INSTRUCTIONS, Stage1Cache
from repro.trace.profiles import ALL_APPS


def run_fig5(
    config: SystemConfig | None = None,
    *,
    apps: tuple[str, ...] | None = None,
    seed: int | None = None,
    n_instructions: int = DEFAULT_INSTRUCTIONS,
    stage1: Stage1Cache | None = None,
) -> dict[str, float]:
    """Per-app percentage of non-critical (non-ROB-blocking) loads."""
    config = config or baseline_config()
    stage1 = Stage1Cache() if stage1 is None else stage1
    names = apps or tuple(p.name for p in ALL_APPS)
    return {
        app: stage1.get(
            app, config, seed=seed, n_instructions=n_instructions
        ).meters.noncritical_load_percent
        for app in names
    }
