"""Figures 7, 8 and 9: criticality-predictor threshold sweeps.

The paper evaluates its CPT on eight applications across criticality
thresholds {3, 5, 10, 20, 25, 33, 50, 75, 100}%:

* Figure 7 — prediction accuracy: among loads that truly block the ROB
  head, how many the predictor flags critical (83% at 3%, 14.5% at 100%);
* Figure 8 — percent of memory-fetched cache blocks predicted
  non-critical (50.3% average at 3%);
* Figure 9 — percent of LLC writes (fills + write-backs) that go to
  non-critical blocks (~50% at 3%) — the traffic Re-NUCA can spread.

All three come out of one stage-1 run per app: the
:class:`~repro.core.criticality.CriticalityMeters` score every standard
threshold side by side.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import SystemConfig, baseline_config
from repro.core.criticality import STANDARD_THRESHOLDS
from repro.sim.runner import DEFAULT_INSTRUCTIONS, Stage1Cache
from repro.trace.profiles import CRITICALITY_STUDY_APPS


@dataclass(frozen=True)
class CriticalitySweep:
    """Per-app, per-threshold criticality metrics."""

    thresholds: tuple[float, ...]
    #: app -> {threshold -> percent} (Figure 7).
    accuracy: dict[str, dict[float, float]]
    #: app -> {threshold -> percent} (Figure 8).
    noncritical_blocks: dict[str, dict[float, float]]
    #: app -> {threshold -> percent} (Figure 9).
    noncritical_writes: dict[str, dict[float, float]]

    def average(self, table: dict[str, dict[float, float]]) -> dict[float, float]:
        """The paper's 'Avg' bar for one of the three figures."""
        return {
            t: float(np.mean([per_app[t] for per_app in table.values()]))
            for t in self.thresholds
        }


def run_criticality_sweep(
    config: SystemConfig | None = None,
    *,
    apps: tuple[str, ...] = CRITICALITY_STUDY_APPS,
    seed: int | None = None,
    n_instructions: int = DEFAULT_INSTRUCTIONS,
    stage1: Stage1Cache | None = None,
) -> CriticalitySweep:
    """Run the study apps once and extract all three figures."""
    config = config or baseline_config()
    stage1 = Stage1Cache() if stage1 is None else stage1
    accuracy: dict[str, dict[float, float]] = {}
    blocks: dict[str, dict[float, float]] = {}
    writes: dict[str, dict[float, float]] = {}
    for app in apps:
        meters = stage1.get(
            app, config, seed=seed, n_instructions=n_instructions
        ).meters
        accuracy[app] = meters.accuracy_percent()
        blocks[app] = meters.noncritical_block_percent()
        writes[app] = meters.noncritical_write_percent()
    return CriticalitySweep(
        thresholds=STANDARD_THRESHOLDS,
        accuracy=accuracy,
        noncritical_blocks=blocks,
        noncritical_writes=writes,
    )
