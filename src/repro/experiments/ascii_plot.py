"""Terminal plotting: bar charts, grouped bars and scatter in plain text.

The offline environment has no plotting stack, so the figures the paper
draws are rendered as unicode/ASCII charts — good enough to *see* the
shapes (wear imbalance bars, the lifetime-vs-IPC trade-off scatter)
directly in a terminal or a CI log.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.common.errors import ReproError

_BLOCKS = " ▏▎▍▌▋▊▉█"


def _bar(value: float, peak: float, width: int) -> str:
    """A fractional-width horizontal bar."""
    if peak <= 0:
        return ""
    cells = value / peak * width
    full = int(cells)
    frac = int((cells - full) * 8)
    bar = "█" * full
    if frac:
        bar += _BLOCKS[frac]
    return bar


def bar_chart(
    data: Mapping[str, float],
    *,
    width: int = 40,
    title: str | None = None,
    unit: str = "",
) -> str:
    """Horizontal bar chart of label -> value.

    Raises:
        ReproError: for empty input or negative values.
    """
    if not data:
        raise ReproError("bar chart of nothing")
    values = list(data.values())
    if min(values) < 0:
        raise ReproError("bar chart needs non-negative values")
    peak = max(values) or 1.0
    label_w = max(len(str(k)) for k in data)
    lines = [title] if title else []
    for label, value in data.items():
        lines.append(
            f"{str(label):>{label_w}} {value:10.2f}{unit} |{_bar(value, peak, width)}"
        )
    return "\n".join(lines)


def grouped_bars(
    groups: Mapping[str, Mapping[str, float]],
    *,
    width: int = 30,
    title: str | None = None,
) -> str:
    """One bar block per group (e.g. per NUCA scheme, bars per bank)."""
    if not groups:
        raise ReproError("grouped bars of nothing")
    peak = max(
        (value for bars in groups.values() for value in bars.values()), default=1.0
    )
    out = [title] if title else []
    for group, bars in groups.items():
        out.append(f"--- {group} ---")
        label_w = max(len(str(k)) for k in bars)
        for label, value in bars.items():
            out.append(
                f"{str(label):>{label_w}} {value:8.2f} |{_bar(value, max(peak, 1e-12), width)}"
            )
        out.append("")
    return "\n".join(out).rstrip()

def scatter(
    points: Mapping[str, tuple[float, float]],
    *,
    cols: int = 56,
    rows: int = 16,
    xlabel: str = "x",
    ylabel: str = "y",
    title: str | None = None,
) -> str:
    """Labelled 2-D scatter (the Figure 4b trade-off view).

    Each point is drawn as the first letter of its label, with a legend
    mapping letters back to labels.
    """
    if not points:
        raise ReproError("scatter of nothing")
    xs = [p[0] for p in points.values()]
    ys = [p[1] for p in points.values()]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    grid = [[" "] * cols for _ in range(rows)]
    legend = []
    for index, (label, (x, y)) in enumerate(points.items()):
        marker = chr(ord("A") + index % 26)
        legend.append(f"{marker}={label}")
        col = int((x - x_lo) / x_span * (cols - 1))
        row = rows - 1 - int((y - y_lo) / y_span * (rows - 1))
        grid[row][col] = marker
    lines = [title] if title else []
    lines.append(f"{ylabel} {y_hi:.2f}")
    for row in grid:
        lines.append("  |" + "".join(row))
    lines.append("  +" + "-" * cols)
    lines.append(f"  {y_lo:.2f}{'':>{max(0, cols - 18)}}{xlabel}: "
                 f"{x_lo:.2f}..{x_hi:.2f}")
    lines.append("  " + "  ".join(legend))
    return "\n".join(lines)


def interval_heatmap(
    matrix: Sequence[Sequence[float]],
    *,
    row_label: str = "bank",
    title: str | None = None,
) -> str:
    """Heat map of a rows x intervals matrix (shade = relative value).

    Each output line is one row (e.g. one LLC bank) across the column
    axis (e.g. interval-dump periods), shaded against the global peak so
    hot spots stand out; the row sum is printed on the right.  This is
    the terminal rendering of the telemetry interval series — see
    ``docs/OBSERVABILITY.md``.

    Raises:
        ReproError: for an empty or ragged matrix.
    """
    rows = [list(row) for row in matrix]
    if not rows or not rows[0]:
        raise ReproError("interval heatmap of nothing")
    width = len(rows[0])
    if any(len(row) != width for row in rows):
        raise ReproError("interval heatmap rows differ in length")
    peak = max((value for row in rows for value in row), default=0.0) or 1.0
    shades = " ░▒▓█"
    label_w = len(f"{row_label}{len(rows) - 1}")
    lines = [title] if title else []
    for index, row in enumerate(rows):
        cells = "".join(
            shades[min(4, int(value / peak * 4.999))] for value in row
        )
        lines.append(
            f"{row_label}{index:<{label_w - len(row_label)}} |{cells}| "
            f"{sum(row):10.0f}"
        )
    lines.append(f"{'':>{label_w}} +{'-' * width}+  ({width} intervals, "
                 f"peak {peak:.0f}/cell)")
    return "\n".join(lines)


def wear_heatmap(
    bank_values: Sequence[float], *, cols: int = 4, title: str | None = None
) -> str:
    """Mesh-shaped heat map of per-bank values (shade = relative wear)."""
    values = list(bank_values)
    if not values or len(values) % cols:
        raise ReproError("bank count must be a positive multiple of cols")
    peak = max(values) or 1.0
    shades = " ░▒▓█"
    lines = [title] if title else []
    for row_start in range(0, len(values), cols):
        row = values[row_start:row_start + cols]
        cells = []
        for value in row:
            shade = shades[min(4, int(value / peak * 4.999))]
            cells.append(f"[{shade * 3} {value / peak:4.0%}]")
        lines.append(" ".join(cells))
    return "\n".join(lines)
