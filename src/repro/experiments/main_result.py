"""The headline workloads x schemes grid.

One :class:`~repro.sim.metrics.MatrixResult` feeds several artefacts:

* Figure 3 (motivation, 4 schemes) — per-bank harmonic-mean lifetimes;
* Figure 4b — the lifetime-vs-IPC trade-off scatter;
* Figure 11 — per-workload IPC improvement over S-NUCA;
* Figure 12 — per-bank harmonic-mean lifetimes with Re-NUCA included;
* Table III "Actual Results" row — raw minimum lifetimes.
"""

from __future__ import annotations

from repro.config import SystemConfig, baseline_config
from repro.sim.metrics import MatrixResult
from repro.sim.runner import DEFAULT_INSTRUCTIONS, Stage1Cache, run_matrix
from repro.trace.workloads import make_workloads

#: Scheme order used by the paper's Table III.
ALL_SCHEMES: tuple[str, ...] = ("Naive", "S-NUCA", "Re-NUCA", "R-NUCA", "Private")

#: The motivation section (Figure 3) predates Re-NUCA.
MOTIVATION_SCHEMES: tuple[str, ...] = ("S-NUCA", "R-NUCA", "Private", "Naive")


def run_main_matrix(
    config: SystemConfig | None = None,
    *,
    schemes: tuple[str, ...] = ALL_SCHEMES,
    label: str = "baseline",
    num_workloads: int = 10,
    seed: int | None = None,
    n_instructions: int = DEFAULT_INSTRUCTIONS,
    stage1: Stage1Cache | None = None,
    progress=None,
) -> MatrixResult:
    """Run the evaluation grid on one configuration."""
    config = config or baseline_config()
    workloads = make_workloads(
        num_cores=config.num_cores, count=num_workloads, seed=seed
    )
    return run_matrix(
        workloads,
        schemes,
        config,
        label=label,
        seed=seed,
        n_instructions=n_instructions,
        stage1=stage1,
        progress=progress,
    )
