"""Table II / Figure 2: single-core application characterisation.

The paper characterises each benchmark alone on one core with a 256 KB
L2 and a 2 MB L3 — exactly the stage-1 nominal configuration — and
reports WPKI, MPKI, L3 hit rate and IPC.  Figure 2 plots WPKI + MPKI per
application (its write-intensity metric).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import SystemConfig, baseline_config
from repro.sim.runner import DEFAULT_INSTRUCTIONS, Stage1Cache
from repro.trace.profiles import ALL_APPS, get_profile


@dataclass(frozen=True)
class Table2Row:
    """Measured vs target characterisation of one application."""

    app: str
    wpki: float
    mpki: float
    hitrate: float
    ipc: float
    target_wpki: float
    target_mpki: float
    target_hitrate: float
    target_ipc: float

    @property
    def write_intensity(self) -> float:
        """Figure 2's bar: WPKI + MPKI."""
        return self.wpki + self.mpki


def run_table2(
    config: SystemConfig | None = None,
    *,
    apps: tuple[str, ...] | None = None,
    seed: int | None = None,
    n_instructions: int = DEFAULT_INSTRUCTIONS,
    stage1: Stage1Cache | None = None,
) -> list[Table2Row]:
    """Characterise each application on the stage-1 nominal machine."""
    config = config or baseline_config()
    stage1 = Stage1Cache() if stage1 is None else stage1
    names = apps or tuple(p.name for p in ALL_APPS)
    rows = []
    for app in names:
        result = stage1.get(app, config, seed=seed, n_instructions=n_instructions)
        target = get_profile(app)
        rows.append(
            Table2Row(
                app=app,
                wpki=result.wpki,
                mpki=result.mpki,
                hitrate=result.l3_hitrate,
                ipc=result.ipc,
                target_wpki=target.wpki,
                target_mpki=target.mpki,
                target_hitrate=target.hitrate,
                target_ipc=target.ipc,
            )
        )
    return rows
