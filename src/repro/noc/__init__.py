"""Network-on-chip substrate: a 2-D mesh with XY dimension-order routing.

The paper's machine connects 16 cores and 16 L3 banks over a 4x4 mesh
(Table I); NUCA access latency is the bank latency plus the round-trip
hop latency between the requesting core's node and the bank's node.
"""

from repro.noc.mesh import Mesh, RouteStats

__all__ = ["Mesh", "RouteStats"]
