"""2-D mesh topology with XY (dimension-order) routing.

Nodes are numbered row-major: node ``n`` sits at column ``n % cols`` and
row ``n // cols``.  Core *i* and L3 bank *i* share node *i* (Table I pairs
one bank with each core).

The latency model is hop-based: a message from node ``a`` to node ``b``
traverses ``manhattan(a, b)`` router/link stages, each costing
``hop_cycles``.  An LLC access pays the round trip (request + response).
Per-link traffic counters are kept so experiments can report on-chip
traffic differences between NUCA schemes (S-NUCA's extra traffic is part
of the paper's motivation).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import ConfigError
from repro.config import NocConfig


@dataclass
class RouteStats:
    """Aggregate routing statistics for one simulation."""

    messages: int = 0
    total_hops: int = 0

    @property
    def mean_hops(self) -> float:
        """Mean hop count per message (0 when no traffic was routed)."""
        return self.total_hops / self.messages if self.messages else 0.0


class Mesh:
    """A ``cols x rows`` mesh with XY routing and traffic accounting.

    Args:
        config: mesh geometry and per-hop cost.

    The mesh is deliberately contention-free (the paper models NUCA
    latency by distance, not by queueing); per-link utilisation counters
    are still maintained so that traffic pressure is observable.
    """

    def __init__(self, config: NocConfig, *, track_links: bool = False) -> None:
        self.config = config
        self.cols = config.mesh_cols
        self.rows = config.mesh_rows
        self.num_nodes = config.num_nodes
        #: When True, per-link utilisation is recorded on every send
        #: (costs a route walk per message; off by default in the hot path).
        self.track_links = track_links
        self.stats = RouteStats()
        # Directed link utilisation: [node, direction] with directions
        # 0=east, 1=west, 2=north(+row), 3=south(-row).
        self.link_traffic = np.zeros((self.num_nodes, 4), dtype=np.int64)
        # Precomputed Manhattan distance matrix — the hot query.
        xs = np.arange(self.num_nodes) % self.cols
        ys = np.arange(self.num_nodes) // self.cols
        self._dist = (
            np.abs(xs[:, None] - xs[None, :]) + np.abs(ys[:, None] - ys[None, :])
        ).astype(np.int32)
        # Memory controllers sit at the mesh corners (Table I's 4 DDR3
        # channels); an LLC miss routes bank -> nearest controller and the
        # refill returns controller -> core.
        corners = {
            self.node_at(0, 0),
            self.node_at(self.cols - 1, 0),
            self.node_at(0, self.rows - 1),
            self.node_at(self.cols - 1, self.rows - 1),
        }
        self.memory_controllers: tuple[int, ...] = tuple(sorted(corners))
        mc = np.asarray(self.memory_controllers)
        self._nearest_mc = mc[np.argmin(self._dist[:, mc], axis=1)]

    def coords(self, node: int) -> tuple[int, int]:
        """Node id -> (col, row)."""
        self._check_node(node)
        return node % self.cols, node // self.cols

    def node_at(self, col: int, row: int) -> int:
        """(col, row) -> node id."""
        if not (0 <= col < self.cols and 0 <= row < self.rows):
            raise ConfigError(f"coordinates ({col},{row}) outside mesh")
        return row * self.cols + col

    def distance(self, src: int, dst: int) -> int:
        """Manhattan hop count between two nodes."""
        self._check_node(src)
        self._check_node(dst)
        return int(self._dist[src, dst])

    def distance_matrix(self) -> np.ndarray:
        """Read-only view of the full node-to-node hop matrix."""
        view = self._dist.view()
        view.flags.writeable = False
        return view

    def route(self, src: int, dst: int) -> list[int]:
        """XY route from ``src`` to ``dst`` (inclusive of both endpoints).

        X (column) is corrected first, then Y — deterministic and
        deadlock-free, matching dimension-order routing hardware.
        """
        self._check_node(src)
        self._check_node(dst)
        path = [src]
        col, row = self.coords(src)
        dcol, drow = self.coords(dst)
        while col != dcol:
            col += 1 if dcol > col else -1
            path.append(self.node_at(col, row))
        while row != drow:
            row += 1 if drow > row else -1
            path.append(self.node_at(col, row))
        return path

    def send(self, src: int, dst: int) -> int:
        """Account one message and return its one-way latency in cycles."""
        hops = int(self._dist[src, dst])
        self.stats.messages += 1
        self.stats.total_hops += hops
        if hops and self.track_links:
            self._count_links(src, dst)
        return hops * self.config.hop_cycles

    def round_trip_latency(self, src: int, dst: int) -> int:
        """Request+response latency between two nodes, with accounting."""
        return self.send(src, dst) + self.send(dst, src)

    def latency(self, src: int, dst: int) -> int:
        """Pure one-way latency (no traffic accounting)."""
        return self.distance(src, dst) * self.config.hop_cycles

    def nearest_memory_controller(self, node: int) -> int:
        """The corner memory-controller node closest to ``node``."""
        self._check_node(node)
        return int(self._nearest_mc[node])

    def memory_controller_of(self, line: int) -> int:
        """The controller node owning ``line``'s DRAM channel.

        Channel selection is by address interleaving (as in real memory
        systems), not by proximity — bits above the LLC bank-select bits
        pick one of the corner controllers, so every bank and every core
        talk to all controllers uniformly.
        """
        return self.memory_controllers[(line >> 4) % len(self.memory_controllers)]

    def miss_path_latency(self, core: int, bank: int) -> int:
        """NoC latency of an LLC miss: core -> bank -> controller -> core.

        The request travels to the home bank, is forwarded to that bank's
        nearest memory controller, and the refill returns directly to the
        requesting core — the standard NUCA miss dataflow; unlike a naive
        2x(core,bank) round trip it does not double-charge distant banks
        for latency the DRAM access dominates anyway.
        """
        mc = int(self._nearest_mc[bank])
        hops = (
            self.send(core, bank) + self.send(bank, mc) + self.send(mc, core)
        )
        return hops

    def neighbors(self, node: int) -> list[int]:
        """Nodes one hop away (2-4 of them depending on position)."""
        col, row = self.coords(node)
        out = []
        if col + 1 < self.cols:
            out.append(self.node_at(col + 1, row))
        if col - 1 >= 0:
            out.append(self.node_at(col - 1, row))
        if row + 1 < self.rows:
            out.append(self.node_at(col, row + 1))
        if row - 1 >= 0:
            out.append(self.node_at(col, row - 1))
        return out

    def record_traffic(self, messages: int, total_hops: int) -> None:
        """Batched traffic accounting (the replay kernel's reduction).

        Equivalent to ``messages`` individual :meth:`send` calls whose
        hop counts sum to ``total_hops``.  Only valid while per-link
        tracking is off — batched counts cannot be attributed to links.
        """
        if self.track_links:
            raise ConfigError("record_traffic cannot attribute link traffic")
        self.stats.messages += messages
        self.stats.total_hops += total_hops

    def reset_stats(self) -> None:
        """Clear traffic accounting (topology is untouched)."""
        self.stats = RouteStats()
        self.link_traffic[:] = 0

    def bind_telemetry(self, registry) -> None:
        """Register ``noc.*`` gauges over the live routing statistics.

        Callback gauges read :attr:`stats` through ``self`` so they stay
        valid across :meth:`reset_stats` (which replaces the object).
        """
        registry.gauge("noc.messages", lambda: self.stats.messages)
        registry.gauge("noc.total_hops", lambda: self.stats.total_hops)
        registry.gauge("noc.mean_hops", lambda: self.stats.mean_hops)

    def _count_links(self, src: int, dst: int) -> None:
        path = self.route(src, dst)
        for a, b in zip(path, path[1:]):
            ca, ra = self.coords(a)
            cb, rb = self.coords(b)
            if cb == ca + 1:
                direction = 0
            elif cb == ca - 1:
                direction = 1
            elif rb == ra + 1:
                direction = 2
            else:
                direction = 3
            self.link_traffic[a, direction] += 1

    def _check_node(self, node: int) -> None:
        if not (0 <= node < self.num_nodes):
            raise ConfigError(f"node {node} outside mesh of {self.num_nodes} nodes")
