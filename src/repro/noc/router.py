"""Flit-level router timing: where the per-hop cost comes from.

The mesh model charges a flat ``hop_cycles`` per router/link traversal.
This module derives that number from first principles so the
configuration is justified rather than magic:

* a canonical 4-stage virtual-channel router pipeline (buffer write /
  route compute, VC allocation, switch allocation, switch + link
  traversal),
* message serialization: a 64-B cache line at 16-B links is 4 body flits
  behind a head flit, so a data message occupies each link for
  ``payload_flits`` extra cycles beyond the head's pipeline latency.

:func:`effective_hop_cycles` folds both into the single per-hop constant
the mesh uses — for the default parameters it lands at 16 cycles for
data-bearing round trips, matching ``NocConfig.hop_cycles``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigError


@dataclass(frozen=True)
class RouterTiming:
    """One router/link stage's microarchitectural parameters."""

    pipeline_stages: int = 4
    link_cycles: int = 1
    flit_bytes: int = 16
    line_bytes: int = 64
    control_flits: int = 1

    def __post_init__(self) -> None:
        if self.pipeline_stages < 1:
            raise ConfigError("router needs at least one pipeline stage")
        if self.link_cycles < 1:
            raise ConfigError("link traversal takes at least one cycle")
        if self.flit_bytes < 1 or self.line_bytes < self.flit_bytes:
            raise ConfigError("line must be at least one flit")
        if self.control_flits < 1:
            raise ConfigError("a message has at least a head flit")

    @property
    def data_flits(self) -> int:
        """Flits of a data-bearing message (head + line payload)."""
        return self.control_flits + -(-self.line_bytes // self.flit_bytes)

    def hop_latency(self, flits: int) -> int:
        """Cycles for a ``flits``-flit message to clear one router+link.

        The head flit pays the full pipeline; body flits stream behind it
        one per cycle (wormhole switching).
        """
        if flits < 1:
            raise ConfigError("message needs at least one flit")
        return self.pipeline_stages + self.link_cycles + (flits - 1)

    def message_latency(self, hops: int, flits: int) -> int:
        """End-to-end latency over ``hops`` routers (pipelined wormhole).

        Heads pipeline across hops; the tail arrives ``flits - 1`` cycles
        after the head at the destination.
        """
        if hops < 0:
            raise ConfigError("hop count cannot be negative")
        if hops == 0:
            return 0
        per_hop = self.pipeline_stages + self.link_cycles
        return hops * per_hop + (flits - 1)


def effective_hop_cycles(
    timing: RouterTiming | None = None, *, congestion_factor: float = 2.5
) -> int:
    """Flat per-hop constant for an LLC transaction's average hop.

    An LLC access is a control request one way and a data response the
    other; the round trip over ``2h`` hops costs
    ``message_latency(h, 1) + message_latency(h, data_flits)`` cycles.
    The flat model charges ``2h x hop_cycles``, so the equivalent
    constant is the per-hop pipeline cost plus half the data
    serialization amortised over a typical (2-hop) path, scaled by an
    average VC-arbitration/queueing multiplier (``congestion_factor``)
    for an LLC-loaded mesh — the mesh model itself is contention-free,
    so the congestion a loaded network would add is folded in here.
    """
    timing = timing or RouterTiming()
    if congestion_factor < 1.0:
        raise ConfigError("congestion factor cannot be below 1 (zero load)")
    per_hop = timing.pipeline_stages + timing.link_cycles
    typical_hops = 2
    serialization = timing.data_flits - 1
    total = 2 * typical_hops * per_hop + serialization + (timing.control_flits - 1)
    zero_load = total / (2 * typical_hops)
    return round(zero_load * congestion_factor)


def validate_against_config(hop_cycles: int, timing: RouterTiming | None = None) -> bool:
    """True when a flat ``hop_cycles`` is within 2x of the derived value.

    Used by tests to keep ``NocConfig.hop_cycles`` honest if the router
    parameters ever change.
    """
    derived = effective_hop_cycles(timing)
    return derived / 2 <= hop_cycles <= derived * 2
