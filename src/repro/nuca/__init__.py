"""NUCA last-level cache: banks, mapping policies and the controller.

Baseline policies (Sections II-B and III):

* :class:`~repro.nuca.snuca.SNucaPolicy` — static address interleaving
  over all banks (uniform wear, long average hop distance).
* :class:`~repro.nuca.rnuca.RNucaPolicy` — Reactive NUCA: a fixed 4-bank
  cluster at most one hop from each core, indexed with the rotational-ID
  function ``(addr + RID + 1) & (n - 1)`` (fast, but concentrates wear).
* :class:`~repro.nuca.private.PrivatePolicy` — per-core private banks
  (fastest hits, worst wear imbalance and no capacity sharing).
* :class:`~repro.nuca.naive.NaivePolicy` — the perfect wear-levelling
  oracle: every fill goes to the least-written bank, located through a
  full directory (infeasible in hardware; the paper's upper bound).

The paper's hybrid policy lives in :mod:`repro.core.renuca`.
"""

from repro.nuca.bank import NucaBank
from repro.nuca.dnuca import DNucaPolicy
from repro.nuca.llc import LlcStats, NucaLLC
from repro.nuca.naive import NaivePolicy
from repro.nuca.policies import MappingPolicy
from repro.nuca.private import PrivatePolicy
from repro.nuca.rnuca import RNucaPolicy, build_clusters, rotational_ids
from repro.nuca.snuca import SNucaPolicy

__all__ = [
    "NucaBank",
    "DNucaPolicy",
    "LlcStats",
    "NucaLLC",
    "NaivePolicy",
    "MappingPolicy",
    "PrivatePolicy",
    "RNucaPolicy",
    "build_clusters",
    "rotational_ids",
    "SNucaPolicy",
]

#: Registry used by experiment drivers and the CLI-style examples.
POLICY_NAMES = ("Naive", "S-NUCA", "Re-NUCA", "R-NUCA", "Private")


def make_policy(name: str, config, mesh, wear_tracker):
    """Instantiate a mapping policy by its paper name.

    ``Re-NUCA`` is resolved lazily to avoid a circular import with
    :mod:`repro.core`.
    """
    from repro.common.errors import ConfigError

    if name == "S-NUCA":
        return SNucaPolicy(config.num_banks)
    if name == "R-NUCA":
        return RNucaPolicy(mesh, config.rnuca_cluster_size)
    if name == "Private":
        return PrivatePolicy(config.num_banks)
    if name == "Naive":
        return NaivePolicy(config.num_banks, wear_tracker, config.naive_directory_penalty)
    if name == "D-NUCA":
        from repro.nuca.dnuca import DNucaPolicy

        return DNucaPolicy(mesh)
    if name == "Re-NUCA":
        from repro.core.renuca import ReNucaPolicy

        return ReNucaPolicy(config, mesh)
    raise ConfigError(f"unknown NUCA policy {name!r}; known: {POLICY_NAMES}")
