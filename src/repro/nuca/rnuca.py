"""Reactive NUCA (Hardavellas et al., ISCA'09) — Section II-B.

Each core owns a fixed-size *cluster* of banks at most one hop from it
(Figure 4a); a line requested by the core lives somewhere in that
cluster, selected by the rotational-interleaving function

    DestinationBank = (Addr + RID + 1) & (n - 1)

where ``n`` is the cluster size (4 here) and ``RID`` is the core's
rotational ID.  Redirection is thus as table-free as S-NUCA while keeping
every access within one hop — and, as the paper's motivation shows, it
concentrates a write-intensive core's wear on its own 4 banks.

Cluster construction: the ``n`` banks nearest the core, preferring lower
node ids on distance ties.  On a mesh (not a torus) a corner core has
only three <=1-hop banks, so its fourth cluster member sits two hops
away; interior cores match the paper's one-hop property exactly.
Rotational IDs follow the ISCA'09 tiling — ``RID = (x mod w) + w * (y
mod h)`` with ``w x h`` the cluster tile — which guarantees neighbouring
cores' overlapping clusters assign consecutive RIDs.
"""

from __future__ import annotations

from repro.common.errors import ConfigError
from repro.common.units import is_power_of_two, log2_exact
from repro.noc.mesh import Mesh
from repro.nuca.policies import MappingPolicy


def rotational_ids(mesh: Mesh, cluster_size: int) -> list[int]:
    """Rotational ID of every node for a given cluster size."""
    if not is_power_of_two(cluster_size):
        raise ConfigError(f"cluster size must be a power of two, got {cluster_size}")
    bits = log2_exact(cluster_size)
    w = 1 << ((bits + 1) // 2)
    h = cluster_size // w
    rids = []
    for node in range(mesh.num_nodes):
        x, y = mesh.coords(node)
        rids.append((x % w) + w * (y % h))
    return rids


def build_clusters(mesh: Mesh, cluster_size: int) -> list[tuple[int, ...]]:
    """Per-core bank clusters: the ``cluster_size`` nearest banks.

    Deterministic: candidates are ordered by (hop distance, node id).
    """
    if cluster_size <= 0 or cluster_size > mesh.num_nodes:
        raise ConfigError(
            f"cluster size {cluster_size} invalid for a {mesh.num_nodes}-node mesh"
        )
    clusters = []
    for core in range(mesh.num_nodes):
        order = sorted(range(mesh.num_nodes), key=lambda n: (mesh.distance(core, n), n))
        clusters.append(tuple(order[:cluster_size]))
    return clusters


class RNucaPolicy(MappingPolicy):
    """Cluster-local placement with rotational interleaving."""

    name = "R-NUCA"

    def __init__(self, mesh: Mesh, cluster_size: int) -> None:
        if not is_power_of_two(cluster_size):
            raise ConfigError(f"cluster size must be a power of two, got {cluster_size}")
        self.cluster_size = cluster_size
        self.clusters = build_clusters(mesh, cluster_size)
        self.rids = rotational_ids(mesh, cluster_size)
        self._mask = cluster_size - 1

    def bank_of(self, core: int, line: int) -> int:
        """The rotational-interleaving mapping function."""
        idx = (line + self.rids[core] + 1) & self._mask
        return self.clusters[core][idx]

    def locate(self, core: int, line: int) -> int:
        """Deterministic: the line can only be in its cluster slot."""
        return self.bank_of(core, line)

    def place(self, core: int, line: int, critical: bool) -> int:
        """Criticality is ignored; R-NUCA keeps everything close."""
        return self.bank_of(core, line)
