"""The "Naive" perfect wear-levelling oracle (Section III-A).

Every fill is steered to the bank with the fewest writes so far, which
equalises bank wear exactly (0% lifetime variation in Figure 3).  Finding
a line afterwards requires a full directory of line -> bank mappings —
the paper notes the directory overhead of a 32 MB LLC makes this
infeasible in a real processor, and that ignoring distance costs ~21% IPC
versus S-NUCA.  Both costs are modelled: the directory is consulted on
every access (``lookup_penalty`` cycles) and placement ignores the mesh
entirely.
"""

from __future__ import annotations

from repro.common.errors import ConfigError, SimulationError
from repro.nuca.policies import MappingPolicy
from repro.reram.wear import WearTracker


class NaivePolicy(MappingPolicy):
    """Min-write placement behind a precise full directory."""

    name = "Naive"

    def __init__(
        self, num_banks: int, wear_tracker: WearTracker, directory_penalty: int
    ) -> None:
        if num_banks <= 0:
            raise ConfigError("need at least one bank")
        if wear_tracker.num_banks != num_banks:
            raise ConfigError("wear tracker bank count mismatch")
        self.num_banks = num_banks
        self.lookup_penalty = directory_penalty
        self._wear = wear_tracker
        self._directory: dict[int, int] = {}

    def locate(self, core: int, line: int) -> int | None:
        """Directory lookup; None when the line is in no bank."""
        return self._directory.get(line)

    def lookup_node(self, core: int, line: int) -> int:
        """The directory is distributed by static address interleaving.

        Even when the line is cached nowhere, the requester must reach
        the directory slice at the line's static home to learn that.
        """
        return line & (self.num_banks - 1)

    def place(self, core: int, line: int, critical: bool) -> int:
        """The oracle choice: the least-written bank right now."""
        return self._wear.min_write_bank()

    def on_allocate(self, core: int, line: int, bank: int, critical: bool) -> None:
        """Record the placement in the directory."""
        self._directory[line] = bank

    def on_evict(self, line: int, bank: int, aux: object) -> None:
        """Remove the directory entry; it must exist and agree.

        Raises:
            SimulationError: if the directory disagrees with the bank the
                eviction came from — that would mean a lost line.
        """
        recorded = self._directory.pop(line, None)
        if recorded is None:
            raise SimulationError(f"Naive directory lost line {line:#x}")
        if recorded != bank:
            raise SimulationError(
                f"Naive directory says line {line:#x} is in bank {recorded}, "
                f"evicted from {bank}"
            )

    def reset(self) -> None:
        """Drop all directory state."""
        self._directory.clear()

    @property
    def directory_entries(self) -> int:
        """Current directory size (for overhead reporting)."""
        return len(self._directory)
