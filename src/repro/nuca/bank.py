"""One ReRAM NUCA bank: a set-associative array plus wear accounting.

A bank is a 2 MB, 16-way cache slice attached to one mesh node.  All
writes into the bank (demand fills and absorbed write-backs) are counted
against the shared :class:`~repro.reram.wear.WearTracker`, and ReRAM's
asymmetric write latency is exposed through :meth:`write_latency`.
"""

from __future__ import annotations

from repro.cache.cache import AccessResult, Cache
from repro.common.errors import ConfigError
from repro.config import CacheConfig, ReRamConfig
from repro.reram.wear import WearTracker


class NucaBank:
    """A single L3 bank at mesh node ``node_id``."""

    def __init__(
        self,
        node_id: int,
        config: CacheConfig,
        reram: ReRamConfig,
        wear: WearTracker,
        *,
        index_shift: int = 0,
        replacement: str = "lru",
    ) -> None:
        if node_id < 0 or node_id >= wear.num_banks:
            raise ConfigError(f"bank node {node_id} outside wear tracker range")
        self.node_id = node_id
        self.reram = reram
        self._wear = wear
        self.cache = Cache(
            config,
            name=f"L3-bank{node_id}",
            index_shift=index_shift,
            replacement=replacement,
        )

    @property
    def read_latency(self) -> int:
        """Bank access latency for reads (Table I's 100 cycles)."""
        return self.cache.config.latency

    @property
    def write_latency(self) -> int:
        """Bank access latency for writes (read latency + ReRAM penalty)."""
        return self.cache.config.latency + self.reram.write_penalty_cycles

    @property
    def tag_latency(self) -> int:
        """Latency to determine hit/miss (tag array only, no data read).

        The tag array is small SRAM-like storage; a miss is declared long
        before a full 100-cycle ReRAM data access would complete.
        """
        return max(4, self.cache.config.latency // 4)

    def probe(self, line: int, *, is_write: bool = False) -> bool:
        """Demand lookup; a write hit is counted as bank wear."""
        hit = self.cache.probe(line, is_write=is_write)
        if hit and is_write:
            self._wear.record_write(self.node_id, line)
        return hit

    def fill(self, line: int, *, dirty: bool, aux: object) -> AccessResult:
        """Allocate a line (a ReRAM write whenever the fill data is stored).

        With retired frames (fault injection) the target set may have no
        live ways left; the fill is then skipped (``result.filled`` is
        False) and no wear is recorded — nothing was written.
        """
        result = self.cache.allocate(line, dirty=dirty, aux=aux)
        if result.filled:
            self._wear.record_write(self.node_id, line)
        return result

    def apply_frame_faults(self, way_limits) -> list[tuple[int, bool, object]]:
        """Retire dead frames per set; returns drained ``(line, dirty, aux)``.

        ``way_limits`` is the per-set live-way vector from a
        :class:`~repro.faults.injector.FaultInjector`.
        """
        return self.cache.set_way_limits(way_limits)

    @property
    def live_frames(self) -> int:
        """Usable line frames under the current fault state."""
        return self.cache.live_frames()

    @property
    def writes(self) -> int:
        """Total writes absorbed by this bank."""
        return self._wear.writes_of(self.node_id)
