"""Private per-core last-level cache banks (Section III).

Each core's lines live only in its own bank: zero network hops on a hit
(best IPC in the paper — +8% over S-NUCA), but no capacity sharing and
maximal wear imbalance — a write-intensive core like ``mcf`` burns out
its own bank in about 2 years while its neighbours' banks idle.
"""

from __future__ import annotations

from repro.common.errors import ConfigError, SimulationError
from repro.nuca.policies import MappingPolicy


class PrivatePolicy(MappingPolicy):
    """``bank = core`` — the degenerate "NUCA" baseline."""

    name = "Private"

    def __init__(self, num_banks: int) -> None:
        if num_banks <= 0:
            raise ConfigError("need at least one bank")
        self.num_banks = num_banks

    def locate(self, core: int, line: int) -> int:
        """Only the requester's own bank can hold its lines."""
        self._check(core)
        return core

    def place(self, core: int, line: int, critical: bool) -> int:
        """Fills always land in the requester's bank."""
        self._check(core)
        return core

    def _check(self, core: int) -> None:
        if not (0 <= core < self.num_banks):
            raise SimulationError(f"core {core} has no private bank")
