"""Vectorized stage-2 replay kernel (the un-instrumented fast path).

The stage-2 hot loop replays millions of merged LLC references; the
reference implementation walks the full object graph per record
(:meth:`~repro.nuca.llc.NucaLLC.fetch` -> policy -> per-set dict
:class:`~repro.cache.cache.Cache` -> :class:`~repro.noc.mesh.Mesh` ->
:class:`~repro.reram.wear.WearTracker`).  This module replays the same
stream against **array-backed bank state** (:class:`ArrayBanks`: numpy
``(sets x ways)`` tag/age/dirty matrices plus a line->frame index dict)
and batches all side-channel accounting:

* criticality-blind policies (S-NUCA, R-NUCA, Private) get their bank
  vector, NoC latencies (through the mesh's precomputed distance matrix)
  and per-record hit latencies computed vectorized up front; the scalar
  loop only runs the sequential parts (LRU state, the in-order memory
  pipe), and wear / hop / message totals are reduced with
  ``np.bincount``-style operations afterwards;
* Naive keeps its exact directory + min-write-bank oracle (placement
  feeds back through wear, so it stays scalar) on the array engine;
* Re-NUCA keeps its in-order CPT feedback loop and real enhanced-TLB
  objects, but with hoisted locals, the array bank engine and per-record
  candidate banks computed from small precomputed tables.

Equivalence contract: for every supported configuration the kernel
produces **field-for-field identical** :class:`~repro.sim.metrics.\
WorkloadSchemeResult`s to the reference path (including float fields —
all floating-point accumulation replicates the reference's operation
order).  The kernel transfers *statistics* back into the live objects
(LLC stats, mesh traffic, wear counters, memory pipe/row state, policy
counters); the per-bank ``Cache`` content is intentionally left at its
warm-up state — nothing on the un-instrumented path reads it after the
measured phase.

The kernel never engages when telemetry or fault injection is attached
(those need the object graph's event hooks); :func:`kernel_supported`
is the single gate.
"""

from __future__ import annotations

from itertools import chain, islice
from operator import itemgetter

import numpy as np

from repro.common.errors import SimulationError
from repro.nuca.naive import NaivePolicy
from repro.nuca.private import PrivatePolicy
from repro.nuca.rnuca import RNucaPolicy
from repro.nuca.snuca import SNucaPolicy

#: Extracts the dirty flag from a cache payload ``[dirty, aux]`` list.
_DIRTY_SLOT = itemgetter(0)


class ArrayBanks:
    """All L3 banks' tag state as flat numpy matrices.

    Sets of every bank are stacked into one global set space
    (``global_set = bank * num_sets + set``); each row holds one set's
    ``assoc`` ways.  Recency is a monotonically increasing global stamp
    (``age``): with native LRU and no invalidations the OrderedDict
    recency order of the reference cache is exactly the ascending stamp
    order, so the eviction victim is ``argmin(age[set])``.

    ``index`` maps resident line addresses to flat frame positions
    (``global_set * assoc + way``) for O(1) probes from scalar loops.
    It may be partial (see :meth:`prefill_many` with ``index=False``):
    the replay loops treat it as a memo — an index miss falls back to a
    16-way scan of the home set's tags, whose result is memoised, and
    victim eviction drops at most a hint (``pop`` with default), which
    the next scan rebuilds.
    """

    def __init__(self, num_banks: int, num_sets: int, assoc: int, index_shift: int) -> None:
        total_sets = num_banks * num_sets
        self.num_banks = num_banks
        self.num_sets = num_sets
        self.assoc = assoc
        self.index_shift = index_shift
        self.tags = np.full((total_sets, assoc), -1, dtype=np.int64)
        self.age = np.zeros((total_sets, assoc), dtype=np.int64)
        self.dirty = np.zeros((total_sets, assoc), dtype=bool)
        self.owner = np.zeros((total_sets, assoc), dtype=np.int16)
        self.critical = np.zeros((total_sets, assoc), dtype=bool)
        self.occ = np.zeros(total_sets, dtype=np.int64)
        self.index: dict[int, int] = {}
        #: With ``from_llc(..., lazy_payloads=True)``: the live per-set
        #: tag->``[dirty, aux]`` dicts of every bank, flat in global-set
        #: order.  Way ``w`` of a warm set is the ``w``-th dict value
        #: (prefill scatters in export order), so a replay loop can
        #: resolve a warm line's payload positionally on the rare
        #: eviction path instead of materialising every column up front.
        self.set_dicts: list[dict] | None = None
        self.clock = 0

    @classmethod
    def from_llc(
        cls,
        llc,
        *,
        aux: bool = True,
        index: bool = True,
        lazy_payloads: bool = False,
    ) -> "ArrayBanks":
        """Snapshot a (warmed) :class:`~repro.nuca.llc.NucaLLC`'s content.

        Built from the banks' bulk exports (C-level traversal) rather
        than a per-line Python loop — a full 8 MiB-per-bank LLC holds
        half a million warm lines, so this runs before every kernel
        replay and must stay cheap.  ``aux=False`` skips decoding the
        per-line ``(owner, critical)`` payloads (the criticality-blind
        replays never read them), leaving those matrices at defaults.
        ``index=False`` skips building the probe index (see
        :meth:`prefill_many`) — the replay loops populate it lazily
        instead, since a stream only ever probes its own few thousand
        distinct addresses.  ``lazy_payloads=True`` goes further and
        skips every payload column (dirty, owner, critical): only tags
        and occupancy are scattered, and :attr:`set_dicts` keeps the
        live per-set dicts so a replay loop can read a warm line's
        payload positionally when it is actually needed — which is only
        on eviction, a few percent of records.
        """
        cache0 = llc.banks[0].cache
        state = cls(
            len(llc.banks), cache0.num_sets, cache0.config.assoc, cache0.index_shift
        )
        counts_parts: list[list[int]] = []
        lines_parts: list[list[int]] = []
        entry_parts: list = []
        for bank in llc.banks:
            counts, bank_lines, entries = bank.cache.export_lines(
                lazy_entries=lazy_payloads or not aux
            )
            counts_parts.append(counts)
            lines_parts.append(bank_lines)
            entry_parts.append(entries)
        counts_all = np.asarray(
            list(chain.from_iterable(counts_parts)), dtype=np.int64
        )
        lines = np.asarray(list(chain.from_iterable(lines_parts)), dtype=np.int64)
        total = int(counts_all.sum())
        gsets = np.repeat(
            np.arange(len(counts_all), dtype=np.int64), counts_all
        )
        if lazy_payloads:
            state.set_dicts = list(
                chain.from_iterable(bank.cache.set_views() for bank in llc.banks)
            )
            state.prefill_many(lines, gsets, index=index)
            return state
        dirty = np.fromiter(
            map(_DIRTY_SLOT, chain.from_iterable(entry_parts)),
            dtype=bool,
            count=total,
        )
        owner = critical = None
        if aux and total:
            aux_vals = [e[1] for e in chain.from_iterable(entry_parts)]
            owner = np.asarray([a[0] for a in aux_vals], dtype=np.int16)
            critical = np.asarray([a[1] for a in aux_vals], dtype=bool)
        state.prefill_many(
            lines,
            gsets,
            dirty=dirty,
            owner=owner,
            critical=critical,
            index=index,
        )
        return state

    def prefill_many(
        self,
        lines: np.ndarray,
        gsets: np.ndarray,
        *,
        dirty: np.ndarray | None = None,
        owner: np.ndarray | None = None,
        critical: np.ndarray | None = None,
        index: bool = True,
    ) -> None:
        """Batched install of resident lines (warm-up scatter).

        ``lines[i]`` is installed into global set ``gsets[i]``; lines of
        the same set must appear in LRU -> MRU order (their recency
        stamps follow input order).  All entries land in free ways — a
        batch that would overflow a set raises, as warm-up never evicts.

        ``index=False`` skips populating the probe ``index`` (and with
        it the batch duplicate check): the replay loops resolve index
        misses by scanning the home set's tags and memoising the hit, so
        prebuilding entries for every warm line — the single most
        expensive part of a full-LLC snapshot — is wasted work there.
        """
        n = len(lines)
        if n == 0:
            return
        lines = np.asarray(lines, dtype=np.int64)
        gsets = np.asarray(gsets, dtype=np.int64)
        if np.all(gsets[:-1] <= gsets[1:]):
            # Already set-ordered (the snapshot path): skip the argsort.
            s = gsets
            sorted_lines = lines
            stamps = self.clock + np.arange(n, dtype=np.int64)
            order = None
        else:
            order = np.argsort(gsets, kind="stable")
            s = gsets[order]
            sorted_lines = lines[order]
            stamps = self.clock + order
        starts = np.flatnonzero(np.concatenate(([True], s[1:] != s[:-1])))
        counts = np.diff(np.concatenate((starts, [n])))
        ways = np.arange(n, dtype=np.int64) - np.repeat(starts, counts) + self.occ[s]
        if int(ways.max()) >= self.assoc:
            raise SimulationError("prefill_many overflows a set (warm-up never evicts)")
        pos = s * self.assoc + ways
        self.tags.reshape(-1)[pos] = sorted_lines
        self.age.reshape(-1)[pos] = stamps
        self.clock += n
        if dirty is not None:
            dirty = np.asarray(dirty, dtype=bool)
            self.dirty.reshape(-1)[pos] = dirty if order is None else dirty[order]
        if owner is not None:
            owner = np.asarray(owner, dtype=np.int16)
            self.owner.reshape(-1)[pos] = owner if order is None else owner[order]
        if critical is not None:
            critical = np.asarray(critical, dtype=bool)
            self.critical.reshape(-1)[pos] = (
                critical if order is None else critical[order]
            )
        self.occ[s[starts]] += counts
        if index:
            before = len(self.index)
            self.index.update(zip(sorted_lines.tolist(), pos.tolist()))
            if len(self.index) != before + n:
                raise SimulationError(
                    "duplicate line address in prefill_many batch"
                )


def kernel_supported(llc) -> bool:
    """True when the fast kernel can replay this LLC bit-exactly.

    The kernel handles the pristine, un-instrumented configuration of the
    five paper schemes: no telemetry, no fault injection, no link
    tracking, no per-line wear histogram, native LRU with full
    associativity and zero set rotation.  Anything else (D-NUCA's
    migration, alternative replacement policies, retired frames) follows
    the reference object graph.
    """
    if llc.telemetry is not None or llc.faults is not None:
        return False
    if llc.mesh.track_links or llc.wear.track_lines:
        return False
    ptype = type(llc.policy)
    if ptype not in (SNucaPolicy, RNucaPolicy, PrivatePolicy, NaivePolicy):
        from repro.core.renuca import ReNucaPolicy

        if ptype is not ReNucaPolicy:
            return False
    for bank in llc.banks:
        cache = bank.cache
        if cache.rotation or cache.has_way_limits or cache.replacement != "lru":
            return False
    return True


def replay(llc, merged, *, cpts=None, threshold=0.0, block_cycles=0.0) -> np.ndarray:
    """Replay a merged stream through the kernel; returns per-record latency.

    Drop-in replacement for the reference measured loop: ``llc`` must be
    warmed and measurement-reset, ``merged`` is the runner's
    ``_MergedStream``.  ``cpts``/``threshold``/``block_cycles`` feed the
    Re-NUCA criticality loop and are ignored by the blind policies.
    """
    policy = llc.policy
    ptype = type(policy)
    line = merged.line
    if ptype is SNucaPolicy:
        # S-NUCA's bank is a pure function of the line address, so a
        # line is resident in at most one set — probe hints can skip
        # the home-set guard.
        return _replay_static(
            llc, merged, line & (policy.num_banks - 1), multi_copy=False
        )
    if ptype is PrivatePolicy:
        return _replay_static(
            llc, merged, merged.core.astype(np.int64), multi_copy=True
        )
    if ptype is RNucaPolicy:
        core = merged.core.astype(np.int64)
        rids = np.asarray(policy.rids, dtype=np.int64)
        idx = (line + rids[core] + 1) & (policy.cluster_size - 1)
        clusters = np.asarray(policy.clusters, dtype=np.int64)
        return _replay_static(
            llc, merged, clusters[core, idx], multi_copy=True
        )
    if ptype is NaivePolicy:
        return _replay_naive(llc, merged)
    from repro.core.renuca import ReNucaPolicy

    if ptype is ReNucaPolicy:
        return _replay_renuca(llc, merged, cpts, threshold, block_cycles)
    raise SimulationError(f"replay kernel cannot drive policy {policy.name!r}")


def _mem_params(memory) -> tuple[float, float, int, int, int, float, dict]:
    """Hoist the memory model's constants and sequential pipe state."""
    cfg = memory.config
    return (
        1.0 / cfg.bandwidth_lines_per_cycle,
        float(memory._pipe_free),
        cfg.latency_cycles,
        cfg.row_hit_latency_cycles,
        memory._bank_mask,
        memory._row_shift,
        dict(memory._open_rows),
    )


def _replay_static(llc, merged, bank_vec, *, multi_copy: bool) -> np.ndarray:
    """S-NUCA / R-NUCA / Private: pure-function mapping, no criticality.

    Everything derivable from (core, line) alone is vectorized up front;
    the scalar loop carries only the genuinely sequential state — LRU
    recency, set occupancy and the in-order memory pipe.  ``multi_copy``
    marks mappings that depend on the requesting core (R-NUCA, Private),
    where one line can be resident in several banks and a probe hint
    must be checked against the record's home set.
    """
    state = ArrayBanks.from_llc(llc, index=False, lazy_payloads=True)
    mesh = llc.mesh
    config = llc.config
    bank0 = llc.banks[0]
    n = merged.total
    pen = float(llc.policy.lookup_penalty)

    dist = mesh.distance_matrix()
    hop = config.noc.hop_cycles
    core = merged.core.astype(np.int64)
    line = merged.line
    bank = np.asarray(bank_vec, dtype=np.int64)
    mcs = np.asarray(mesh.memory_controllers, dtype=np.int64)
    mc = mcs[(line >> 4) % len(mcs)]
    d_cb = dist[core, bank].astype(np.int64)
    d_bmc = dist[bank, mc].astype(np.int64)
    d_mcc = dist[mc, core].astype(np.int64)
    # Reference op order: (penalty + round_trip) + read_latency, and
    # (now + penalty) + (send + tag + send) — kept bit-exact in float64.
    hit_lat = (pen + 2 * d_cb * hop) + bank0.read_latency
    to_mc = d_cb * hop + bank0.tag_latency + d_bmc * hop
    ret = d_mcc * hop
    rt_hops = 2 * d_cb
    miss_hops = d_cb + d_bmc + d_mcc

    gset = bank * state.num_sets + ((line >> state.index_shift) & (state.num_sets - 1))
    wb_arr = merged.is_wb

    # Only the columns the scalar loop reads become Python lists.
    line_l = line.tolist()
    gset_l = gset.tolist()
    wb_l = wb_arr.tolist()
    ts_l = merged.ts.tolist()
    hit_lat_l = hit_lat.tolist()
    to_mc_l = to_mc.tolist()
    ret_l = ret.tolist()

    service, pipe_free, miss_cycles, rowhit_cycles, dram_mask, row_shift, open_rows = (
        _mem_params(llc.memory)
    )
    open_get = open_rows.get
    index = state.index
    index_get = index.get
    index_pop = index.pop
    # Loop-local list views of the array state: per-record loads/stores on
    # Python lists cost a fraction of numpy scalar indexing, and nothing
    # here needs elementwise numpy until the batched reductions below.
    tags_f = state.tags.reshape(-1).tolist()
    occ_l = state.occ.tolist()
    assoc = state.assoc
    # Warm recency starts at all-zero: within a set the warm ways are
    # already in LRU -> MRU order, and ``seg.index(min(seg))`` resolves
    # ties to the lowest way — exactly the warm LRU.  Every touch stamps
    # ``stamp0 + i`` (> 0), so touched lines outrank untouched warm ones
    # and each other in record order, matching the reference's clock.
    age_f = [0] * len(tags_f)
    # Dirty state is an overlay over the warm payloads: the loop records
    # its own writes here and falls back to the live set dicts (by way
    # position) only when evicting a line it never wrote.
    sets_l = state.set_dicts
    dirty_over: dict[int, bool] = {}
    dirty_get = dirty_over.get
    stamp0 = state.clock
    hits = bytearray(n)
    lat_l = [0.0] * n
    queue_acc = 0.0
    row_hits = 0
    mem_writes = 0

    for i, (line_i, is_wb, gs) in enumerate(zip(line_l, wb_l, gset_l)):
        # Probe: the index is a lazily-built memo.  For multi-copy
        # mappings a hit must point into this record's home set;
        # otherwise scan the home set's 16 tags once and memoise.
        pos = index_get(line_i)
        if pos is None or (multi_copy and pos // assoc != gs):
            base = gs * assoc
            try:
                pos = tags_f.index(line_i, base, base + assoc)
                index[line_i] = pos
            except ValueError:
                pos = None
        if is_wb:
            if pos is not None:
                dirty_over[pos] = True
                age_f[pos] = stamp0 + i
                hits[i] = 1
                continue
            fill_dirty = True
        else:
            if pos is not None:
                age_f[pos] = stamp0 + i
                lat_l[i] = hit_lat_l[i]
                hits[i] = 1
                continue
            ts = ts_l[i]
            arrival = ts + pen + to_mc_l[i]
            start = arrival if arrival > pipe_free else pipe_free
            queue_acc += start - arrival
            pipe_free = start + service
            row = line_i >> row_shift
            rbank = row & dram_mask
            if open_get(rbank) == row:
                mlat = rowhit_cycles
                row_hits += 1
            else:
                open_rows[rbank] = row
                mlat = miss_cycles
            lat_l[i] = (start + mlat - ts) + ret_l[i]
            fill_dirty = False
        # Fill (wb re-allocation or demand miss): free way, else LRU victim.
        oc = occ_l[gs]
        if oc < assoc:
            pos2 = gs * assoc + oc
            occ_l[gs] = oc + 1
        else:
            base = gs * assoc
            seg = age_f[base:base + assoc]
            pos2 = base + seg.index(min(seg))
            vline = tags_f[pos2]
            index_pop(vline, None)
            vdirty = dirty_get(pos2)
            if vdirty is None:
                # Untouched warm line: way k is the k-th dict value.
                vdirty = next(islice(sets_l[gs].values(), pos2 - base, None))[0]
            if vdirty:
                ts = ts_l[i]
                start = ts if ts > pipe_free else pipe_free
                queue_acc += start - ts
                pipe_free = start + service
                vrow = vline >> row_shift
                vbank = vrow & dram_mask
                if open_get(vbank) == vrow:
                    row_hits += 1
                else:
                    open_rows[vbank] = vrow
                mem_writes += 1
        tags_f[pos2] = line_i
        age_f[pos2] = stamp0 + i
        dirty_over[pos2] = fill_dirty
        index[line_i] = pos2

    state.clock = stamp0 + n
    # Per-fetch latencies accumulate in record order; write-back records
    # contribute an exact float no-op (x + 0.0 == x), so one in-order sum
    # reproduces the reference's running accumulation bit-for-bit.
    total_lat = sum(lat_l)
    # Batched accounting: everything the loop did not need in-order.
    hit_mask = np.frombuffer(bytes(hits), dtype=np.uint8).astype(bool)
    fetch_mask = ~wb_arr
    miss_mask = fetch_mask & ~hit_mask
    n_miss = int(miss_mask.sum())
    stats = llc.stats
    stats.fetches += int(fetch_mask.sum())
    stats.fetch_hits += int((fetch_mask & hit_mask).sum())
    stats.writebacks += int(wb_arr.sum())
    stats.writeback_hits += int((wb_arr & hit_mask).sum())
    stats.memory_reads += n_miss
    stats.memory_writes += mem_writes
    stats.total_fetch_latency += total_lat
    llc.wear.add_writes(
        np.bincount(bank[wb_arr | miss_mask], minlength=llc.wear.num_banks)
    )
    mesh.record_traffic(
        2 * n + n_miss,
        int(rt_hops[~miss_mask].sum()) + int(miss_hops[miss_mask].sum()),
    )
    _write_back_memory(llc.memory, n_miss + mem_writes, row_hits, queue_acc,
                       pipe_free, open_rows)
    return np.asarray(lat_l, dtype=np.float32)


def _replay_naive(llc, merged) -> np.ndarray:
    """Naive oracle: exact directory + min-write-bank placement.

    Placement feeds back through the live wear counters, so the whole
    record sequence is scalar; the win over the reference is the array
    bank engine, hoisted locals and table lookups instead of method
    chains.  The policy's real directory dict is mutated in place so its
    consistency invariants (and post-run inspection) are preserved.
    """
    policy = llc.policy
    state = ArrayBanks.from_llc(llc, index=False, lazy_payloads=True)
    mesh = llc.mesh
    config = llc.config
    bank0 = llc.banks[0]
    n = merged.total
    pen = float(policy.lookup_penalty)
    nb = policy.num_banks
    bmask = nb - 1

    hop = config.noc.hop_cycles
    dist_l = mesh.distance_matrix().tolist()
    mcs = mesh.memory_controllers
    nmc = len(mcs)
    read_lat = bank0.read_latency
    # Hit latency table: (penalty + round_trip) + read, per (core, bank).
    hitlat = [
        [(pen + 2 * dist_l[c][b] * hop) + read_lat for b in range(nb)]
        for c in range(len(dist_l))
    ]

    core_l = merged.core.tolist()
    line_l = merged.line.tolist()
    wb_l = merged.is_wb.tolist()
    ts_l = merged.ts.tolist()

    service, pipe_free, miss_cycles, rowhit_cycles, dram_mask, row_shift, open_rows = (
        _mem_params(llc.memory)
    )
    open_get = open_rows.get
    directory = policy._directory
    dir_get = directory.get
    index = state.index
    index_get = index.get
    tags_f = state.tags.reshape(-1).tolist()
    occ_l = state.occ.tolist()
    # Zero warm stamps + lazy dirty overlay; see _replay_static.
    age_f = [0] * len(tags_f)
    sets_l = state.set_dicts
    dirty_over: dict[int, bool] = {}
    dirty_get = dirty_over.get
    num_sets = state.num_sets
    set_mask = num_sets - 1
    index_shift = state.index_shift
    assoc = state.assoc
    stamp0 = state.clock
    bw = llc.wear.bank_writes.tolist()
    lat_l = [0.0] * n
    queue_acc = 0.0
    row_hits = 0
    fetches = fetch_hits = wbs = wb_hits = mem_reads = mem_writes = 0
    messages = 0
    hops = 0

    for i, (core, line_i, is_wb) in enumerate(zip(core_l, line_l, wb_l)):
        bank = dir_get(line_i)
        if is_wb:
            wbs += 1
            if bank is not None:
                messages += 2
                hops += 2 * dist_l[core][bank]
                pos = index_get(line_i)
                if pos is None:
                    # Lazy index memo: scan the directory-recorded home
                    # set (Naive keeps a single-copy invariant, so a
                    # present entry never points at a stale set).
                    base = (
                        bank * num_sets + ((line_i >> index_shift) & set_mask)
                    ) * assoc
                    try:
                        pos = tags_f.index(line_i, base, base + assoc)
                    except ValueError:
                        raise SimulationError(
                            f"Naive directory says line {line_i:#x} is "
                            "resident but the bank array disagrees"
                        ) from None
                    index[line_i] = pos
                dirty_over[pos] = True
                age_f[pos] = stamp0 + i
                bw[bank] += 1
                wb_hits += 1
                continue
            place = bw.index(min(bw))
            fill_dirty = True
        else:
            fetches += 1
            ts = ts_l[i]
            if bank is not None:
                messages += 2
                hops += 2 * dist_l[core][bank]
                pos = index_get(line_i)
                if pos is None:
                    base = (
                        bank * num_sets + ((line_i >> index_shift) & set_mask)
                    ) * assoc
                    try:
                        pos = tags_f.index(line_i, base, base + assoc)
                    except ValueError:
                        raise SimulationError(
                            f"Naive directory says line {line_i:#x} is "
                            "resident but the bank array disagrees"
                        ) from None
                    index[line_i] = pos
                age_f[pos] = stamp0 + i
                lat_l[i] = hitlat[core][bank]
                fetch_hits += 1
                continue
            # Directory miss: learn of it at the line's directory slice,
            # forward to the memory controller, refill straight to core.
            dir_node = line_i & bmask
            mc = mcs[(line_i >> 4) % nmc]
            to_mc = dist_l[core][dir_node] * hop + dist_l[dir_node][mc] * hop
            messages += 3
            hops += dist_l[core][dir_node] + dist_l[dir_node][mc] + dist_l[mc][core]
            arrival = ts + pen + to_mc
            start = arrival if arrival > pipe_free else pipe_free
            queue_acc += start - arrival
            pipe_free = start + service
            row = line_i >> row_shift
            rbank = row & dram_mask
            if open_get(rbank) == row:
                mlat = rowhit_cycles
                row_hits += 1
            else:
                open_rows[rbank] = row
                mlat = miss_cycles
            mem_reads += 1
            lat_l[i] = (start + mlat - ts) + dist_l[mc][core] * hop
            place = bw.index(min(bw))
            fill_dirty = False
        gs = place * num_sets + ((line_i >> index_shift) & set_mask)
        oc = occ_l[gs]
        victim = None
        if oc < assoc:
            pos2 = gs * assoc + oc
            occ_l[gs] = oc + 1
        else:
            base = gs * assoc
            seg = age_f[base:base + assoc]
            pos2 = base + seg.index(min(seg))
            vline = tags_f[pos2]
            index.pop(vline, None)
            vdirty = dirty_get(pos2)
            if vdirty is None:
                vdirty = next(islice(sets_l[gs].values(), pos2 - base, None))[0]
            victim = (vline, vdirty)
        bw[place] += 1
        tags_f[pos2] = line_i
        age_f[pos2] = stamp0 + i
        dirty_over[pos2] = fill_dirty
        index[line_i] = pos2
        directory[line_i] = place
        if victim is not None:
            vline, vdirty = victim
            recorded = directory.pop(vline, None)
            if recorded is None:
                raise SimulationError(f"Naive directory lost line {vline:#x}")
            if recorded != place:
                raise SimulationError(
                    f"Naive directory says line {vline:#x} is in bank "
                    f"{recorded}, evicted from {place}"
                )
            if vdirty:
                ts = ts_l[i]
                start = ts if ts > pipe_free else pipe_free
                queue_acc += start - ts
                pipe_free = start + service
                vrow = vline >> row_shift
                vbank = vrow & dram_mask
                if open_get(vbank) == vrow:
                    row_hits += 1
                else:
                    open_rows[vbank] = vrow
                mem_writes += 1

    state.clock = stamp0 + n
    stats = llc.stats
    stats.fetches += fetches
    stats.fetch_hits += fetch_hits
    stats.writebacks += wbs
    stats.writeback_hits += wb_hits
    stats.memory_reads += mem_reads
    stats.memory_writes += mem_writes
    stats.total_fetch_latency += sum(lat_l)
    wear = llc.wear
    wear.add_writes(np.asarray(bw, dtype=np.int64) - wear.bank_writes)
    mesh.record_traffic(messages, hops)
    _write_back_memory(llc.memory, mem_reads + mem_writes, row_hits, queue_acc,
                       pipe_free, open_rows)
    return np.asarray(lat_l, dtype=np.float32)


def _replay_renuca(llc, merged, cpts, threshold, block_cycles) -> np.ndarray:
    """Re-NUCA: scalar loop with in-order CPT feedback on the array engine.

    The live :class:`~repro.core.tlb.EnhancedTlb` and
    :class:`~repro.core.criticality.CriticalityPredictor` objects are
    driven in exactly the reference call sequence (mapping-bit reads,
    allocation-time bit sets, eviction-time bit clears, issue-time ratio
    reads, commit-time ground-truth updates), so their internal LRU and
    counter state stays bit-identical while everything around them uses
    precomputed tables and flat arrays.
    """
    policy = llc.policy
    state = ArrayBanks.from_llc(llc, index=False, lazy_payloads=True)
    mesh = llc.mesh
    config = llc.config
    bank0 = llc.banks[0]
    n = merged.total

    hop = config.noc.hop_cycles
    dist_l = mesh.distance_matrix().tolist()
    mcs = mesh.memory_controllers
    nmc = len(mcs)
    read_lat = bank0.read_latency
    tag_lat = bank0.tag_latency
    n_nodes = len(dist_l)
    sn_mask = policy._snuca._mask
    rnuca = policy._rnuca
    clusters_l = [list(c) for c in rnuca.clusters]
    rids_l = list(rnuca.rids)
    cmask = rnuca._mask
    tlbs = policy.tlbs
    # (0.0 penalty + round_trip) + read, per (core, bank).
    hitlat = [
        [(0.0 + 2 * dist_l[c][b] * hop) + read_lat for b in range(n_nodes)]
        for c in range(n_nodes)
    ]

    core_l = merged.core.tolist()
    line_l = merged.line.tolist()
    wb_l = merged.is_wb.tolist()
    ts_l = merged.ts.tolist()
    load_l = merged.is_load.tolist()
    pc_l = merged.pc.tolist()
    stall_l = merged.stall.tolist()
    slack_l = merged.slack.tolist()
    mlp_l = merged.mlp.tolist()
    nominal_l = merged.nominal.tolist()

    service, pipe_free, miss_cycles, rowhit_cycles, dram_mask, row_shift, open_rows = (
        _mem_params(llc.memory)
    )
    open_get = open_rows.get
    index = state.index
    index_get = index.get
    tags_f = state.tags.reshape(-1).tolist()
    # Zero warm stamps (ties resolve to the warm LRU way) and lazy
    # payload overlays; see _replay_static.  Owner is only read when a
    # victim's mapping bit must be cleared, so warm owners stay in the
    # live set dicts until then.  The predictor's criticality verdict is
    # recorded in the TLB mapping bits — nothing reads it per-frame.
    age_f = [0] * len(tags_f)
    sets_l = state.set_dicts
    dirty_over: dict[int, bool] = {}
    owner_over: dict[int, int] = {}
    occ_l = state.occ.tolist()
    num_sets = state.num_sets
    set_mask = num_sets - 1
    index_shift = state.index_shift
    assoc = state.assoc
    stamp0 = state.clock
    bw = [0] * llc.wear.num_banks
    lat_l = [0.0] * n
    queue_acc = 0.0
    row_hits = 0
    fetches = fetch_hits = wbs = wb_hits = mem_reads = mem_writes = 0
    crit_allocs = noncrit_allocs = 0
    messages = 0
    hops = 0

    for i, (core, line_i, is_wb) in enumerate(zip(core_l, line_l, wb_l)):
        tlb = tlbs[core]
        if is_wb:
            wbs += 1
            if tlb.mapping_bit(line_i):
                bank = clusters_l[core][(line_i + rids_l[core] + 1) & cmask]
            else:
                bank = line_i & sn_mask
            messages += 2
            hops += 2 * dist_l[core][bank]
            gs = bank * num_sets + ((line_i >> index_shift) & set_mask)
            pos = index_get(line_i)
            if pos is None or pos // assoc != gs:
                # Lazy index memo; a hit must point into the *current*
                # home set (the mapping bit moves lines between the two
                # sub-policies, and stale copies can linger elsewhere).
                base = gs * assoc
                try:
                    pos = tags_f.index(line_i, base, base + assoc)
                    index[line_i] = pos
                except ValueError:
                    pos = None
            if pos is not None:
                dirty_over[pos] = True
                age_f[pos] = stamp0 + i
                bw[bank] += 1
                wb_hits += 1
                continue
            # Reference probes _is_static -> writeback_bank -> locate,
            # which reads the mapping bit a second time (a TLB touch).
            tlb.mapping_bit(line_i)
            place = bank
            critical = False
            fill_dirty = True
        else:
            fetches += 1
            ts = ts_l[i]
            if load_l[i]:
                ratio = cpts[core].ratio(pc_l[i])
                predicted = ratio is not None and ratio >= threshold
            else:
                predicted = False
            if tlb.mapping_bit(line_i):
                bank = clusters_l[core][(line_i + rids_l[core] + 1) & cmask]
            else:
                bank = line_i & sn_mask
            gs = bank * num_sets + ((line_i >> index_shift) & set_mask)
            pos = index_get(line_i)
            if pos is None or pos // assoc != gs:
                base = gs * assoc
                try:
                    pos = tags_f.index(line_i, base, base + assoc)
                    index[line_i] = pos
                except ValueError:
                    pos = None
            if pos is not None:
                age_f[pos] = stamp0 + i
                messages += 2
                hops += 2 * dist_l[core][bank]
                lat = hitlat[core][bank]
                lat_l[i] = lat
                fetch_hits += 1
                fill_needed = False
            else:
                d_cb = dist_l[core][bank]
                mc = mcs[(line_i >> 4) % nmc]
                d_bmc = dist_l[bank][mc]
                d_mcc = dist_l[mc][core]
                to_mc = d_cb * hop + tag_lat + d_bmc * hop
                messages += 3
                hops += d_cb + d_bmc + d_mcc
                arrival = ts + 0.0 + to_mc
                start = arrival if arrival > pipe_free else pipe_free
                queue_acc += start - arrival
                pipe_free = start + service
                row = line_i >> row_shift
                rbank = row & dram_mask
                if open_get(rbank) == row:
                    mlat = rowhit_cycles
                    row_hits += 1
                else:
                    open_rows[rbank] = row
                    mlat = miss_cycles
                mem_reads += 1
                lat = (start + mlat - ts) + d_mcc * hop
                lat_l[i] = lat
                if predicted:
                    place = clusters_l[core][(line_i + rids_l[core] + 1) & cmask]
                else:
                    place = line_i & sn_mask
                critical = predicted
                fill_needed = True
            if fill_needed:
                gs_p = place * num_sets + ((line_i >> index_shift) & set_mask)
                oc = occ_l[gs_p]
                victim = None
                if oc < assoc:
                    pos2 = gs_p * assoc + oc
                    occ_l[gs_p] = oc + 1
                else:
                    base = gs_p * assoc
                    seg = age_f[base:base + assoc]
                    pos2 = base + seg.index(min(seg))
                    vline = tags_f[pos2]
                    index.pop(vline, None)
                    vdirty = dirty_over.get(pos2)
                    vowner = owner_over.get(pos2)
                    if vdirty is None or vowner is None:
                        pl = next(islice(sets_l[gs_p].values(), pos2 - base, None))
                        if vdirty is None:
                            vdirty = pl[0]
                        if vowner is None:
                            vowner = pl[1][0]
                    victim = (vline, vdirty, vowner)
                bw[place] += 1
                tags_f[pos2] = line_i
                age_f[pos2] = stamp0 + i
                dirty_over[pos2] = False
                owner_over[pos2] = core
                index[line_i] = pos2
                tlb.set_mapping_bit(line_i, critical)
                if critical:
                    crit_allocs += 1
                else:
                    noncrit_allocs += 1
                if victim is not None:
                    vline, vdirty, vowner = victim
                    tlbs[vowner].clear_mapping_bit(vline)
                    if vdirty:
                        start = ts if ts > pipe_free else pipe_free
                        queue_acc += start - ts
                        pipe_free = start + service
                        vrow = vline >> row_shift
                        vbank = vrow & dram_mask
                        if open_get(vbank) == vrow:
                            row_hits += 1
                        else:
                            open_rows[vbank] = vrow
                        mem_writes += 1
            if load_l[i]:
                # Commit-time ground truth under this scheme's latency.
                diff = lat - nominal_l[i]
                stall = stall_l[i]
                if stall > 0:
                    stall2 = stall + diff / mlp_l[i]
                else:
                    stall2 = (diff - slack_l[i]) / mlp_l[i]
                cpts[core].observe_commit(pc_l[i], stall2 >= block_cycles)
            continue
        # Write-back re-allocation fill (shared with the fetch-miss fill
        # would cost a branch in the hotter fetch path; duplicated here).
        gs_p = place * num_sets + ((line_i >> index_shift) & set_mask)
        oc = occ_l[gs_p]
        victim = None
        if oc < assoc:
            pos2 = gs_p * assoc + oc
            occ_l[gs_p] = oc + 1
        else:
            base = gs_p * assoc
            seg = age_f[base:base + assoc]
            pos2 = base + seg.index(min(seg))
            vline = tags_f[pos2]
            index.pop(vline, None)
            vdirty = dirty_over.get(pos2)
            vowner = owner_over.get(pos2)
            if vdirty is None or vowner is None:
                pl = next(islice(sets_l[gs_p].values(), pos2 - base, None))
                if vdirty is None:
                    vdirty = pl[0]
                if vowner is None:
                    vowner = pl[1][0]
            victim = (vline, vdirty, vowner)
        bw[place] += 1
        tags_f[pos2] = line_i
        age_f[pos2] = stamp0 + i
        dirty_over[pos2] = fill_dirty
        owner_over[pos2] = core
        index[line_i] = pos2
        tlb.set_mapping_bit(line_i, critical)
        noncrit_allocs += 1
        if victim is not None:
            vline, vdirty, vowner = victim
            tlbs[vowner].clear_mapping_bit(vline)
            if vdirty:
                ts = ts_l[i]
                start = ts if ts > pipe_free else pipe_free
                queue_acc += start - ts
                pipe_free = start + service
                vrow = vline >> row_shift
                vbank = vrow & dram_mask
                if open_get(vbank) == vrow:
                    row_hits += 1
                else:
                    open_rows[vbank] = vrow
                mem_writes += 1

    state.clock = stamp0 + n
    stats = llc.stats
    stats.fetches += fetches
    stats.fetch_hits += fetch_hits
    stats.writebacks += wbs
    stats.writeback_hits += wb_hits
    stats.memory_reads += mem_reads
    stats.memory_writes += mem_writes
    stats.total_fetch_latency += sum(lat_l)
    llc.wear.add_writes(np.asarray(bw, dtype=np.int64))
    policy.critical_allocations += crit_allocs
    policy.noncritical_allocations += noncrit_allocs
    mesh.record_traffic(messages, hops)
    _write_back_memory(llc.memory, mem_reads + mem_writes, row_hits, queue_acc,
                       pipe_free, open_rows)
    return np.asarray(lat_l, dtype=np.float32)


def _write_back_memory(memory, requests, row_hits, queue_cycles, pipe_free, open_rows):
    """Transfer the inlined memory replay's state back into the model."""
    memory.stats.requests += requests
    memory.stats.row_hits += row_hits
    memory.stats.total_queue_cycles += queue_cycles
    memory._pipe_free = pipe_free
    memory._open_rows = open_rows
