"""Mapping-policy interface for the NUCA LLC controller.

A policy answers three questions and observes two events:

* :meth:`MappingPolicy.locate` — in which bank would this line be found
  right now (None when the policy knows it is in no bank)?
* :meth:`MappingPolicy.place` — which bank should a new fill go to, given
  the requester and the fill's predicted criticality?
* :meth:`MappingPolicy.writeback_bank` — which bank should absorb a
  write-back that missed in the LLC?
* :meth:`MappingPolicy.on_allocate` / :meth:`MappingPolicy.on_evict` —
  bookkeeping hooks (directory entries, TLB mapping bits).

``lookup_penalty`` is the extra latency a lookup pays before the bank
access (zero for address-computed mappings; the Naive oracle pays a
directory access on every reference, one source of its 21% IPC loss).
"""

from __future__ import annotations

import abc


class MappingPolicy(abc.ABC):
    """Common interface of all NUCA placement policies."""

    #: Paper name of the policy ("S-NUCA", "R-NUCA", ...).
    name: str = "?"
    #: Extra cycles added to every LLC access by the lookup mechanism.
    lookup_penalty: int = 0
    #: True when :meth:`place` actually reads the ``critical`` argument —
    #: the runner only pays for an online predictor when it does.
    consumes_criticality: bool = False

    @abc.abstractmethod
    def locate(self, core: int, line: int) -> int | None:
        """Bank that would currently hold ``line`` for requester ``core``."""

    def lookup_node(self, core: int, line: int) -> int | None:
        """Node consulted when :meth:`locate` returns None.

        Directory-style policies still pay a trip to the node holding the
        line's directory entry before a miss can be declared; address-
        computed policies never return None from locate, so the default
        is irrelevant for them.
        """
        return None

    @abc.abstractmethod
    def place(self, core: int, line: int, critical: bool) -> int:
        """Bank a demand fill of ``line`` should be allocated into."""

    def writeback_bank(self, core: int, line: int) -> int:
        """Bank an LLC-missing write-back should be allocated into.

        Defaults to non-critical placement (a line whose LLC copy is gone
        has lost any critical residency it had).
        """
        return self.place(core, line, critical=False)

    def on_allocate(self, core: int, line: int, bank: int, critical: bool) -> None:
        """Observe a fill of ``line`` into ``bank`` (default: nothing)."""

    def on_evict(self, line: int, bank: int, aux: object) -> None:
        """Observe the eviction of ``line`` from ``bank``.

        ``aux`` is the payload stored by the LLC at allocation time
        (an ``(owner_core, critical)`` tuple).
        """

    def on_bank_failed(self, bank: int) -> None:
        """Observe a whole-bank (end-of-life) failure.

        Called once by the LLC when fault injection takes ``bank`` out of
        service, *before* the bank's lines are drained (each drained line
        still gets its own :meth:`on_evict`).  Policies that precompute
        bank sets (clusters, interleavings) may use this to adapt; the
        default keeps the mapping function unchanged and relies on the
        controller's remap layer, which is what a table-free hardware
        mapping would do.
        """

    def reset(self) -> None:
        """Clear policy state between workloads (default: nothing)."""

    def reset_counters(self) -> None:
        """Zero reporting counters without touching mapping state.

        Called after warm-up prefill so reported fractions reflect only
        the measured phase (default: nothing to reset).
        """

    def attach_telemetry(self, telemetry) -> None:
        """Bind this policy's instruments to a telemetry handle.

        Called by the runner before the measured phase when the caller
        asked for telemetry.  The default stores the handle; policies
        with interesting internal state (Re-NUCA's TLBs and placement
        mix) override to register gauges and attach event traces.  A
        policy is never handed ``None`` — absence of telemetry means the
        method is simply not called.
        """
        self.telemetry = telemetry
