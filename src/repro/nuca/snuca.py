"""Static NUCA: address-interleaved bank mapping (Section II-B).

The bank of a line is a fixed function of its address — the low line-
address bits — so no lookup table exists, every core's lines spread over
all banks, and write traffic is near-uniform across banks regardless of
which core produces it.  The cost is distance: on a 4x4 mesh the average
request travels ~2.7 hops more than an R-NUCA cluster access.
"""

from __future__ import annotations

from repro.common.errors import ConfigError
from repro.common.units import is_power_of_two
from repro.nuca.policies import MappingPolicy


class SNucaPolicy(MappingPolicy):
    """``bank = line & (num_banks - 1)`` — stateless and table-free."""

    name = "S-NUCA"

    def __init__(self, num_banks: int) -> None:
        if not is_power_of_two(num_banks):
            raise ConfigError(f"bank count must be a power of two, got {num_banks}")
        self.num_banks = num_banks
        self._mask = num_banks - 1

    def locate(self, core: int, line: int) -> int:
        """The static bank — the line can be nowhere else."""
        return line & self._mask

    def place(self, core: int, line: int, critical: bool) -> int:
        """Same static bank; criticality is ignored by S-NUCA."""
        return line & self._mask
