"""Classic D-NUCA with gradual migration (Section II-B's baseline).

The paper motivates R-NUCA by contrasting it with full D-NUCA: any line
may live in any bank of its *bank set*, and frequently-used lines
migrate bank-by-bank toward the requesting core.  Migration needs a
lookup structure (here: an exact line -> bank table standing in for the
distributed partial-tag search of real D-NUCA designs) and — the point
the paper makes for ReRAM — every migration hop **rewrites the line into
a new bank**, adding wear on top of demand fills.

This policy is provided as the motivational baseline the paper describes
but does not plot; the ablation bench compares its wear against R-NUCA's
to show why migration is a poor fit for ReRAM.
"""

from __future__ import annotations

from repro.common.errors import ConfigError, SimulationError
from repro.noc.mesh import Mesh
from repro.nuca.policies import MappingPolicy


class DNucaPolicy(MappingPolicy):
    """Any-bank placement with hop-by-hop migration toward the requester.

    Args:
        mesh: the NoC (used to find the next bank on the migration path).
        promotion_hits: demand hits on a line before it migrates one hop
            closer to its most recent requester.
        directory_penalty: per-access lookup cost of the location table.
    """

    name = "D-NUCA"

    def __init__(
        self, mesh: Mesh, *, promotion_hits: int = 2, directory_penalty: int = 40
    ) -> None:
        if promotion_hits < 1:
            raise ConfigError("promotion threshold must be at least one hit")
        self.mesh = mesh
        self.num_banks = mesh.num_nodes
        self.promotion_hits = promotion_hits
        self.lookup_penalty = directory_penalty
        self._mask = self.num_banks - 1
        # line -> [bank, hits_since_migration]
        self._table: dict[int, list[int]] = {}
        self.migrations = 0

    # -- MappingPolicy interface ----------------------------------------------

    def locate(self, core: int, line: int) -> int | None:
        """Location-table lookup (None = not cached anywhere)."""
        entry = self._table.get(line)
        return None if entry is None else entry[0]

    def lookup_node(self, core: int, line: int) -> int:
        """The location table is distributed by static interleaving."""
        return line & self._mask

    def place(self, core: int, line: int, critical: bool) -> int:
        """Initial placement at the line's static home (tail of the chain)."""
        return line & self._mask

    def on_allocate(self, core: int, line: int, bank: int, critical: bool) -> None:
        """Track the placement."""
        self._table[line] = [bank, 0]

    def on_evict(self, line: int, bank: int, aux: object) -> None:
        """Drop the table entry."""
        entry = self._table.pop(line, None)
        if entry is None:
            raise SimulationError(f"D-NUCA table lost line {line:#x}")
        if entry[0] != bank:
            raise SimulationError(
                f"D-NUCA table says line {line:#x} in bank {entry[0]}, "
                f"evicted from {bank}"
            )

    def reset(self) -> None:
        """Forget all locations."""
        self._table.clear()
        self.migrations = 0

    # -- migration hook (driven by the LLC on demand hits) -----------------------

    def migration_target(self, core: int, line: int) -> int | None:
        """Called by the controller after a demand hit.

        Returns the bank the line should migrate to (one hop along the XY
        path toward the requester), or None when it should stay put.
        Counts hits internally; a migration resets the hit counter.
        """
        entry = self._table.get(line)
        if entry is None:
            raise SimulationError(f"migration query for untracked line {line:#x}")
        bank, hits = entry
        if bank == core:
            return None
        entry[1] = hits + 1
        if entry[1] < self.promotion_hits:
            return None
        path = self.mesh.route(bank, core)
        target = path[1]
        entry[0] = target
        entry[1] = 0
        self.migrations += 1
        return target

    @property
    def tracked_lines(self) -> int:
        """Current location-table size (overhead reporting)."""
        return len(self._table)
