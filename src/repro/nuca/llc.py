"""The NUCA LLC controller.

Drives a set of :class:`~repro.nuca.bank.NucaBank` slices under one
:class:`~repro.nuca.policies.MappingPolicy`.  The controller implements
the reference semantics shared by every scheme:

* **fetch** (an L2 demand miss): locate the line via the policy, probe
  that bank; on an LLC miss, fetch the line from memory and fill it into
  the policy's placement bank (a ReRAM write), evicting (and, if dirty,
  writing back to memory) a victim.
* **write-back** (a dirty L2 eviction): if the line is LLC-resident the
  write is absorbed by its bank (a ReRAM write); otherwise the line is
  re-allocated dirty in the policy's write-back bank.

Latency returned for a fetch is what the core sees:
``lookup_penalty + NoC round trip + bank read latency [+ memory]``.
Write-backs are off the critical path; their latency is not fed back, but
their NoC traffic and bank wear are fully accounted.

With a :class:`~repro.faults.injector.FaultInjector` attached, the
controller degrades gracefully instead of crashing: accesses to dead
banks are remapped over the survivors (with a latency penalty), fills
into sets whose frames are all retired are skipped (the line is served
from memory), and transient read faults force a refetch.  All of it is
counted in :class:`LlcStats`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigError
from repro.config import SystemConfig
from repro.common.units import log2_exact
from repro.mem.model import MainMemory
from repro.noc.mesh import Mesh
from repro.nuca.bank import NucaBank
from repro.nuca.policies import MappingPolicy
from repro.reram.wear import WearSnapshot, WearTracker


@dataclass
class LlcStats:
    """LLC-level event counters (summed over banks)."""

    fetches: int = 0
    fetch_hits: int = 0
    writebacks: int = 0
    writeback_hits: int = 0
    memory_reads: int = 0
    memory_writes: int = 0
    total_fetch_latency: float = 0.0
    #: Accesses redirected away from a dead bank (degradation traffic).
    remapped_fetches: int = 0
    remapped_writebacks: int = 0
    remapped_fills: int = 0
    #: Fills dropped because the target set has no live frames left.
    fills_skipped: int = 0
    #: Hits invalidated by an injected transient (soft) fault.
    transient_faults: int = 0

    @property
    def fetch_hit_rate(self) -> float:
        """LLC hit rate over demand fetches."""
        return self.fetch_hits / self.fetches if self.fetches else 0.0

    @property
    def mean_fetch_latency(self) -> float:
        """Mean demand-fetch latency in cycles."""
        return self.total_fetch_latency / self.fetches if self.fetches else 0.0

    @property
    def remap_traffic(self) -> int:
        """Total accesses that crossed the dead-bank remap layer."""
        return self.remapped_fetches + self.remapped_writebacks + self.remapped_fills


class NucaLLC:
    """A multiprogram-safe NUCA L3 under one mapping policy."""

    def __init__(
        self,
        config: SystemConfig,
        policy: MappingPolicy,
        mesh: Mesh,
        memory: MainMemory,
        wear: WearTracker,
        *,
        faults=None,
        telemetry=None,
    ) -> None:
        if wear.num_banks != config.num_banks:
            raise ConfigError("wear tracker / bank count mismatch")
        if mesh.num_nodes != config.num_banks:
            raise ConfigError("mesh node / bank count mismatch")
        if faults is not None and faults.num_banks != config.num_banks:
            raise ConfigError("fault injector / bank count mismatch")
        self.config = config
        self.policy = policy
        self.mesh = mesh
        self.memory = memory
        self.wear = wear
        #: Optional :class:`~repro.faults.injector.FaultInjector`; None
        #: means pristine hardware (zero overhead on the hot paths).
        self.faults = faults
        #: Optional :class:`~repro.telemetry.Telemetry`; None keeps the
        #: demand paths event-free (one ``is None`` test per block).
        self.telemetry = telemetry
        self._trace = telemetry.trace if telemetry is not None else None
        self.stats = LlcStats()
        shift = log2_exact(config.num_banks)
        self._index_shift = shift
        self.banks = [
            NucaBank(
                node, config.l3_bank, config.reram, wear,
                index_shift=shift, replacement=config.l3_replacement,
            )
            for node in range(config.num_banks)
        ]
        #: Ways per set actually provisioned (``l3_way_limit`` throttles
        #: below the nominal associativity).
        self._configured_ways = (
            config.l3_bank.assoc
            if config.l3_way_limit is None
            else config.l3_way_limit
        )
        if self._configured_ways < config.l3_bank.assoc:
            limits = [self._configured_ways] * config.l3_bank.num_sets
            for bank in self.banks:
                # Fresh (empty) banks: nothing can drain here.
                bank.cache.set_way_limits(limits)
        if telemetry is not None:
            self._bind_gauges(telemetry.registry)

    def _bind_gauges(self, registry) -> None:
        """Register ``llc.*`` gauges over the live controller state."""
        stats_fields = (
            "fetches", "fetch_hits", "writebacks", "writeback_hits",
            "memory_reads", "memory_writes", "fills_skipped",
            "transient_faults",
        )
        for name in stats_fields:
            registry.gauge(
                f"llc.{name}", lambda f=name: getattr(self.stats, f)
            )
        registry.gauge("llc.fetch_hit_rate", lambda: self.stats.fetch_hit_rate)
        registry.gauge(
            "llc.mean_fetch_latency", lambda: self.stats.mean_fetch_latency
        )
        registry.gauge("llc.remap_traffic", lambda: self.stats.remap_traffic)
        registry.gauge("llc.occupancy", self.occupancy)
        registry.gauge(
            "llc.effective_capacity", self.effective_capacity_fraction
        )
        registry.gauge("llc.dead_banks", lambda: self.dead_bank_count)

    # -- demand path --------------------------------------------------------

    def fetch(self, core: int, line: int, now: float, critical: bool) -> tuple[float, bool]:
        """Service an L2 demand miss.

        Args:
            core: requesting core / mesh node.
            line: line address.
            now: request cycle (for memory queueing).
            critical: the criticality prediction accompanying the fetch
                (only Re-NUCA placement consults it).

        Returns:
            ``(latency_cycles, llc_hit)``.
        """
        self.stats.fetches += 1
        mesh = self.mesh
        faults = self.faults
        trace = self._trace
        penalty = float(self.policy.lookup_penalty)
        bank_id = self.policy.locate(core, line)
        if bank_id is not None and faults is not None and faults.is_bank_dead(bank_id):
            # The home bank is dead: the remap layer redirects the access
            # to a surviving bank (or to memory when none survive).
            if trace is not None:
                trace.emit(
                    "fault.remap", ts=now, core=core, line=line,
                    dead_bank=bank_id, path="fetch",
                )
            bank_id = faults.remap_bank(bank_id, line)
            penalty += faults.remap_penalty_cycles
            self.stats.remapped_fetches += 1
        if bank_id is not None:
            hit = self.banks[bank_id].probe(line)
            if hit and faults is not None and faults.transient_fault():
                # Soft fault: the read delivered corrupt data.  The line
                # is dropped and refetched from memory below.
                self.stats.transient_faults += 1
                if trace is not None:
                    trace.emit(
                        "fault.transient", ts=now, core=core, line=line,
                        bank=bank_id,
                    )
                aux = self.banks[bank_id].cache.aux_of(line)
                self.banks[bank_id].cache.invalidate(line)
                self.policy.on_evict(line, bank_id, aux)
                hit = False
            if hit:
                latency = (
                    penalty
                    + mesh.round_trip_latency(core, bank_id)
                    + self.banks[bank_id].read_latency
                )
                self.stats.fetch_hits += 1
                self.stats.total_fetch_latency += latency
                if trace is not None:
                    trace.emit(
                        "llc.hit", ts=now, core=core, line=line,
                        bank=bank_id, latency=latency, critical=critical,
                    )
                mover = getattr(self.policy, "migration_target", None)
                if mover is not None:
                    target = mover(core, line)
                    if target is not None and target != bank_id:
                        self._migrate(line, bank_id, target)
                return latency, True
            # Miss detected at the home bank (tag check only): forward to
            # the line's memory controller; the refill returns straight
            # to the requesting core.
            mc = mesh.memory_controller_of(line)
            to_mc = (
                mesh.send(core, bank_id)
                + self.banks[bank_id].tag_latency
                + mesh.send(bank_id, mc)
            )
        else:
            # Directory-style policies learn of the miss at the node
            # holding the line's directory slice, which forwards to its
            # memory controller.
            dir_node = self.policy.lookup_node(core, line)
            if dir_node is None:
                dir_node = core
            mc = mesh.memory_controller_of(line)
            to_mc = mesh.send(core, dir_node) + mesh.send(dir_node, mc)
        ready = self.memory.request(now + penalty + to_mc, line)
        self.stats.memory_reads += 1
        latency = (ready - now) + mesh.send(mc, core)
        place = self.policy.place(core, line, critical)
        if trace is not None:
            trace.emit(
                "llc.miss", ts=now, core=core, line=line,
                place_bank=place, latency=latency, critical=critical,
            )
        self._fill(place, line, now, dirty=False, core=core, critical=critical)
        self.stats.total_fetch_latency += latency
        return latency, False

    def writeback(self, core: int, line: int, now: float) -> None:
        """Absorb a dirty L2 eviction (off the core's critical path)."""
        self.stats.writebacks += 1
        faults = self.faults
        trace = self._trace
        bank_id = self.policy.locate(core, line)
        remapped = False
        if bank_id is not None and faults is not None and faults.is_bank_dead(bank_id):
            if trace is not None:
                trace.emit(
                    "fault.remap", ts=now, core=core, line=line,
                    dead_bank=bank_id, path="writeback",
                )
            bank_id = faults.remap_bank(bank_id, line)
            remapped = True
            self.stats.remapped_writebacks += 1
        if bank_id is not None:
            self.mesh.round_trip_latency(core, bank_id)
            if self.banks[bank_id].probe(line, is_write=True):
                self.stats.writeback_hits += 1
                if trace is not None:
                    trace.emit(
                        "llc.writeback", ts=now, core=core, line=line,
                        bank=bank_id, hit=True,
                    )
                return
            place_bank = (
                bank_id
                if not remapped and self._is_static(bank_id, core, line)
                else None
            )
        else:
            place_bank = None
        if place_bank is None:
            place_bank = self.policy.writeback_bank(core, line)
        if trace is not None:
            trace.emit(
                "llc.writeback", ts=now, core=core, line=line,
                bank=place_bank, hit=False,
            )
        self._fill(place_bank, line, now, dirty=True, core=core, critical=False)

    # -- internals ------------------------------------------------------------

    def _is_static(self, bank_id: int, core: int, line: int) -> bool:
        """True when locate() is a pure function (bank cannot change)."""
        return self.policy.writeback_bank(core, line) == bank_id

    def _migrate(self, line: int, src: int, dst: int) -> None:
        """Move a line one bank closer to its requester (D-NUCA).

        The move rewrites the line's data in the destination bank — a
        full ReRAM write, counted as wear — and is off the critical path
        (the demand hit was already serviced from the source bank).

        Under fault injection the destination may be dead (the move is
        redirected through the remap layer) or out of live frames (the
        line is dropped to memory); the policy's location metadata is
        kept consistent in both cases.
        """
        from repro.common.errors import SimulationError

        src_cache = self.banks[src].cache
        aux = src_cache.aux_of(line)
        present, dirty = src_cache.invalidate(line)
        if not present:
            raise SimulationError(f"migration of non-resident line {line:#x}")
        if self._trace is not None:
            self._trace.emit("llc.migration", line=line, src=src, dst=dst)
        faults = self.faults
        dst_actual = dst
        if faults is not None and faults.is_bank_dead(dst):
            dst_actual = faults.remap_bank(dst, line)
            self.stats.remapped_fills += 1
        if dst_actual is None:
            # No surviving bank: the migrating line falls out of the LLC.
            self._drop_line(line, dst, aux, dirty)
            return
        if dst_actual != dst and isinstance(aux, tuple) and len(aux) == 2:
            # The policy recorded ``dst``; re-announce the real location
            # before the fill so eviction bookkeeping stays consistent.
            owner, critical = aux
            self.policy.on_allocate(owner, line, dst_actual, critical)
        self.mesh.send(src, dst_actual)
        result = self.banks[dst_actual].fill(line, dirty=dirty, aux=aux)
        if not result.filled:
            self._drop_line(line, dst_actual, aux, dirty)
            return
        if result.victim_line is not None:
            self.policy.on_evict(result.victim_line, dst_actual, result.victim_aux)
            if result.victim_dirty:
                self.memory.request(0.0, result.victim_line)
                self.stats.memory_writes += 1

    def _drop_line(self, line: int, bank: int, aux: object, dirty: bool) -> None:
        """A line could not be kept resident: evict it to memory."""
        self.stats.fills_skipped += 1
        if self._trace is not None:
            self._trace.emit("llc.fill_skipped", line=line, bank=bank)
        self.policy.on_evict(line, bank, aux)
        if dirty:
            self.memory.request(0.0, line)
            self.stats.memory_writes += 1

    def _fill(
        self, bank_id: int, line: int, now: float, *, dirty: bool, core: int, critical: bool
    ) -> None:
        faults = self.faults
        trace = self._trace
        if faults is not None and faults.is_bank_dead(bank_id):
            if trace is not None:
                trace.emit(
                    "fault.remap", ts=now, core=core, line=line,
                    dead_bank=bank_id, path="fill",
                )
            bank_id = faults.remap_bank(bank_id, line)
            self.stats.remapped_fills += 1
        if bank_id is None:
            # No surviving bank at all: the LLC is a pass-through.
            self.stats.fills_skipped += 1
            if trace is not None:
                trace.emit("llc.fill_skipped", ts=now, line=line, bank=None)
            if dirty:
                self.memory.request(now, line)
                self.stats.memory_writes += 1
            return
        result = self.banks[bank_id].fill(line, dirty=dirty, aux=(core, critical))
        if not result.filled:
            # Every frame of the target set is retired: serve from memory.
            self.stats.fills_skipped += 1
            if trace is not None:
                trace.emit("llc.fill_skipped", ts=now, line=line, bank=bank_id)
            if dirty:
                self.memory.request(now, line)
                self.stats.memory_writes += 1
            return
        self.policy.on_allocate(core, line, bank_id, critical)
        if result.victim_line is not None:
            self.policy.on_evict(result.victim_line, bank_id, result.victim_aux)
            if result.victim_dirty:
                self.memory.request(now, result.victim_line)
                self.stats.memory_writes += 1

    # -- fault degradation ----------------------------------------------------------

    def apply_faults(self, snapshot: WearSnapshot | None = None) -> None:
        """Materialise and apply the injector's fault state.

        ``snapshot`` supplies the wear history driving endurance faults
        (defaults to this LLC's current wear — typically the warm-up
        wear).  Dead banks are drained entirely; partially worn banks
        have their dead frames retired.  Drained dirty lines stream to
        memory; mapping-policy metadata is cleaned up line by line, so
        the simulation continues on the degraded cache without any
        internal inconsistency.

        No-op without an attached injector.  Idempotent derivation: the
        injector derives once; re-applying reuses the derived state.
        """
        if self.faults is None:
            return
        if snapshot is None:
            snapshot = self.wear.snapshot()
        if not self.faults.derived:
            self.faults.derive(snapshot, index_shift=self._index_shift)
        cap = self._configured_ways
        for bank in self.banks:
            node = bank.node_id
            if self.faults.is_bank_dead(node):
                self.policy.on_bank_failed(node)
                drained = bank.cache.drain()
            else:
                # Endurance faults retire frames out of the *configured*
                # way budget: a bank already throttled to ``cap`` ways
                # cannot get frames back from the injector.
                limits = [min(int(lim), cap) for lim in self.faults.way_limits_of(node)]
                if min(limits) >= cap:
                    continue
                drained = bank.apply_frame_faults(limits)
            for line, dirty, aux in drained:
                self.policy.on_evict(line, node, aux)
                if dirty:
                    self.memory.request(0.0, line)
                    self.stats.memory_writes += 1

    def effective_capacity_fraction(self) -> float:
        """Usable LLC frames / *configured* frames (1.0 when fault-free).

        The denominator honours ``l3_way_limit``: a deliberately
        throttled LLC is not "degraded" (that flag is reserved for fault
        damage), so a pristine way-limited run still reports 1.0.
        """
        per_bank = self.config.l3_bank.num_sets * self._configured_ways
        total = per_bank * len(self.banks)
        live = sum(
            0 if (self.faults is not None and self.faults.is_bank_dead(b.node_id))
            else b.live_frames
            for b in self.banks
        )
        return live / total

    @property
    def dead_bank_count(self) -> int:
        """Banks currently out of service."""
        return len(self.faults.dead_banks) if self.faults is not None else 0

    # -- warm-up --------------------------------------------------------------------

    def prefill(self, core: int, line: int, *, critical: bool = False) -> None:
        """Install ``line`` as if core had fetched it long ago (warm-up).

        Uses the normal placement path so policy metadata (directories,
        mapping bits) stays consistent; ``critical`` reproduces the
        criticality the line's last long-run fetch would have carried.
        Callers reset wear and statistics after prefilling (see
        :meth:`reset_measurement`).
        """
        bank_id = self.policy.locate(core, line)
        if bank_id is not None and self.banks[bank_id].cache.contains(line):
            return
        place = self.policy.place(core, line, critical)
        self._fill(place, line, 0.0, dirty=False, core=core, critical=critical)

    def prefill_many(self, core, lines, *, critical=None) -> None:
        """Batched :meth:`prefill` of many lines for one core.

        ``critical`` is an optional per-line flag sequence aligned with
        ``lines``; omitted means every line installs non-critical.  The
        loop is semantically one :meth:`prefill` per line — same policy
        calls in the same order — with the method lookups hoisted out,
        which is what warm-up's inner loop spends its time on.
        """
        policy = self.policy
        locate = policy.locate
        place = policy.place
        banks = self.banks
        fill = self._fill
        if critical is None:
            for line in lines:
                bank_id = locate(core, line)
                if bank_id is not None and banks[bank_id].cache.contains(line):
                    continue
                fill(place(core, line, False), line, 0.0,
                     dirty=False, core=core, critical=False)
        else:
            for line, crit in zip(lines, critical):
                crit = bool(crit)
                bank_id = locate(core, line)
                if bank_id is not None and banks[bank_id].cache.contains(line):
                    continue
                fill(place(core, line, crit), line, 0.0,
                     dirty=False, core=core, critical=crit)

    def reset_measurement(self) -> None:
        """Zero wear and statistics, keeping cache/policy content state."""
        self.wear.reset()
        self.stats = LlcStats()
        self.mesh.reset_stats()
        self.memory.reset()
        self.policy.reset_counters()
        from repro.cache.cache import CacheStats

        for bank in self.banks:
            bank.cache.stats = CacheStats()

    # -- inspection ---------------------------------------------------------------

    def bank_writes(self) -> list[int]:
        """Per-bank write counts (the wear metric)."""
        return [int(w) for w in self.wear.bank_writes]

    def occupancy(self) -> int:
        """Lines resident across all banks."""
        return sum(bank.cache.occupancy() for bank in self.banks)

    def resident_bank_of(self, line: int) -> int | None:
        """Exhaustive search for a line (test helper only)."""
        for bank in self.banks:
            if bank.cache.contains(line):
                return bank.node_id
        return None
