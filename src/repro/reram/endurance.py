"""Lifetime arithmetic: write counts + simulated time -> years.

The paper's metric chain:

1. A cache line wears out beyond ``cell_endurance`` writes (1e11).
2. With intra-bank wear-levelling, a bank of ``L`` lines absorbs
   ``endurance x L x spread`` writes before its capacity is gone
   (``spread`` < 1 models residual intra-bank imbalance).
3. A workload writing the bank at rate ``r`` writes/second therefore
   kills it after ``endurance x L x spread / r`` seconds.
4. Per bank, the *harmonic mean* over workloads gives Figures 3/12/13/
   15/17; the minimum over banks and workloads gives Table III's "raw
   minimum lifetime".

Idle banks would live forever; their lifetime is capped at
:data:`LIFETIME_CAP_YEARS` so harmonic means stay finite (the cap is far
above every plotted value, so it never distorts a reported number).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.common.errors import ReproError
from repro.common.stats import coefficient_of_variation, harmonic_mean
from repro.common.units import SECONDS_PER_YEAR

#: Cap applied to (near-)idle banks to keep harmonic means finite.
LIFETIME_CAP_YEARS: float = 1000.0


def bank_lifetime_years(
    writes: int,
    elapsed_cycles: float,
    clock_hz: float,
    *,
    lines_per_bank: int,
    cell_endurance: float,
    wear_spread: float = 1.0,
    cap_years: float = LIFETIME_CAP_YEARS,
) -> float:
    """Lifetime in years of one bank under one workload's write rate.

    Raises:
        ReproError: for non-positive time or geometry (a zero-cycle
            simulation has no rate to extrapolate).
    """
    if elapsed_cycles <= 0:
        raise ReproError("cannot extrapolate lifetime from zero simulated cycles")
    if lines_per_bank <= 0 or cell_endurance <= 0:
        raise ReproError("bank geometry/endurance must be positive")
    if not (0 < wear_spread <= 1.0):
        raise ReproError("wear spread must be in (0, 1]")
    if writes < 0:
        raise ReproError("negative write count")
    if writes == 0:
        return cap_years
    seconds = elapsed_cycles / clock_hz
    rate = writes / seconds
    budget = cell_endurance * lines_per_bank * wear_spread
    return min(cap_years, budget / rate / SECONDS_PER_YEAR)


def lifetimes_for_banks(
    bank_writes: Sequence[int],
    elapsed_cycles: float,
    clock_hz: float,
    *,
    lines_per_bank: int,
    cell_endurance: float,
    wear_spread: float = 1.0,
) -> np.ndarray:
    """Vector of per-bank lifetimes for one workload."""
    return np.array(
        [
            bank_lifetime_years(
                int(w),
                elapsed_cycles,
                clock_hz,
                lines_per_bank=lines_per_bank,
                cell_endurance=cell_endurance,
                wear_spread=wear_spread,
            )
            for w in bank_writes
        ]
    )


def lifetime_summary(per_workload_bank_lifetimes: Sequence[Sequence[float]]) -> dict:
    """Aggregate per-workload x per-bank lifetimes into the paper's metrics.

    Args:
        per_workload_bank_lifetimes: outer index workload, inner index bank.

    Returns:
        dict with ``hmean_per_bank`` (Figure 3/12 bars), ``raw_min``
        (Table III), ``hmean_overall`` and ``variation`` (coefficient of
        variation across the per-bank harmonic means; the Naive scheme's
        headline is that this is ~0).
    """
    matrix = np.asarray(per_workload_bank_lifetimes, dtype=np.float64)
    if matrix.ndim != 2 or matrix.size == 0:
        raise ReproError("need a non-empty workloads x banks lifetime matrix")
    hmean_per_bank = np.array(
        [harmonic_mean(matrix[:, b]) for b in range(matrix.shape[1])]
    )
    return {
        "hmean_per_bank": hmean_per_bank,
        "raw_min": float(matrix.min()),
        "hmean_overall": harmonic_mean(matrix.reshape(-1)),
        "variation": coefficient_of_variation(hmean_per_bank),
    }
