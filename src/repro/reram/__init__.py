"""ReRAM technology substrate.

:mod:`repro.reram.cell` models a single metal-oxide ReRAM cell (Section
II-A: SET/RESET switching, finite write endurance);
:mod:`repro.reram.wear` tracks write counts per L3 bank (and a sampled
per-line histogram); :mod:`repro.reram.endurance` turns write counts and
simulated time into the paper's lifetime-in-years metrics.
"""

from repro.reram.cell import CellState, ReRamCell
from repro.reram.endurance import (
    LIFETIME_CAP_YEARS,
    bank_lifetime_years,
    lifetime_summary,
)
from repro.reram.intrabank import IntraBankLeveler, SetWearMeter
from repro.reram.wear import WearTracker

__all__ = [
    "CellState",
    "ReRamCell",
    "LIFETIME_CAP_YEARS",
    "bank_lifetime_years",
    "lifetime_summary",
    "IntraBankLeveler",
    "SetWearMeter",
    "WearTracker",
]
