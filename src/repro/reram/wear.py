"""Per-bank (and sampled per-line) write-wear tracking.

Every write into an L3 bank — a line fill on a miss or an absorbed L2
write-back — rewrites one cache line's worth of cells, so bank wear is
simply the bank's write count.  The tracker also keeps an exact per-line
write histogram per bank (dict-of-dicts, populated lazily) so intra-bank
non-uniformity can be inspected, although the paper's lifetime metric
assumes intra-bank wear-levelling (its subject is *inter-bank* wear; see
``ReRamConfig.intra_bank_wear_spread``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import ConfigError, SimulationError


@dataclass(frozen=True)
class WearSnapshot:
    """Immutable copy of a tracker's state at one instant.

    Taken with :meth:`WearTracker.snapshot` (e.g. after warm-up, just
    before counters are reset) and consumed by the fault models, which
    need the write-traffic shape to decide where cells die first.
    """

    bank_writes: np.ndarray
    line_writes: tuple[dict[int, int], ...]

    @property
    def num_banks(self) -> int:
        """Number of banks covered by the snapshot."""
        return len(self.bank_writes)

    def line_histogram(self, bank: int) -> dict[int, int]:
        """Per-line write counts of one bank (empty when untracked)."""
        if not (0 <= bank < self.num_banks):
            raise SimulationError(f"bank {bank} of {self.num_banks}")
        return dict(self.line_writes[bank])

    def total_writes(self) -> int:
        """Writes across all banks."""
        return int(self.bank_writes.sum())


class WearTracker:
    """Write counters for ``num_banks`` ReRAM banks.

    ``record_write(bank)`` is the single hot entry point; per-line
    tracking (``record_write(bank, line=...)``) is optional and costs one
    dict update.

    The ``line`` argument is **deliberately ignored** when the tracker
    was built with ``track_lines=False`` (the default): callers on the
    hot path — :class:`~repro.nuca.bank.NucaBank` passes the line on
    every fill — must not pay the per-line dict cost unless an
    experiment opted into it.  Only the bank counter advances; the
    per-line histogram stays empty.  Opt in with ``track_lines=True``
    when per-line data is needed (e.g. fault derivation).
    """

    def __init__(self, num_banks: int, *, track_lines: bool = False) -> None:
        if num_banks <= 0:
            raise ConfigError("need at least one bank")
        self.num_banks = num_banks
        self.track_lines = track_lines
        self.bank_writes = np.zeros(num_banks, dtype=np.int64)
        self._line_writes: list[dict[int, int]] = [dict() for _ in range(num_banks)]

    def record_write(self, bank: int, line: int | None = None) -> None:
        """Count one line-granularity write into ``bank``."""
        if not (0 <= bank < self.num_banks):
            raise SimulationError(f"write to bank {bank} of {self.num_banks}")
        self.bank_writes[bank] += 1
        if self.track_lines and line is not None:
            per_line = self._line_writes[bank]
            per_line[line] = per_line.get(line, 0) + 1

    def add_writes(self, counts) -> None:
        """Accumulate a per-bank write-count vector in one batched update.

        The replay kernel's reduction path: equivalent to
        ``counts[bank]`` individual :meth:`record_write` calls per bank,
        without per-line attribution (so only valid while per-line
        tracking is off).
        """
        counts = np.asarray(counts, dtype=np.int64)
        if counts.shape != (self.num_banks,):
            raise SimulationError(
                f"write-count vector of shape {counts.shape} for "
                f"{self.num_banks} banks"
            )
        if counts.min(initial=0) < 0:
            raise SimulationError("negative write counts")
        self.bank_writes += counts

    def total_writes(self) -> int:
        """Writes across all banks."""
        return int(self.bank_writes.sum())

    def writes_of(self, bank: int) -> int:
        """Writes into one bank."""
        if not (0 <= bank < self.num_banks):
            raise SimulationError(f"bank {bank} of {self.num_banks}")
        return int(self.bank_writes[bank])

    def min_write_bank(self) -> int:
        """Bank with the fewest writes (ties -> lowest id).

        This is the Naive scheme's oracle placement query.
        """
        return int(np.argmin(self.bank_writes))

    def line_histogram(self, bank: int) -> dict[int, int]:
        """Per-line write counts of a bank (empty unless track_lines)."""
        if not (0 <= bank < self.num_banks):
            raise SimulationError(f"bank {bank} of {self.num_banks}")
        return dict(self._line_writes[bank])

    def max_line_writes(self, bank: int) -> int:
        """Most-written line's count in a bank (0 when untracked/idle)."""
        hist = self._line_writes[bank]
        return max(hist.values()) if hist else 0

    def snapshot(self) -> WearSnapshot:
        """Deep-copied, immutable view of the current counters."""
        return WearSnapshot(
            bank_writes=self.bank_writes.copy(),
            line_writes=tuple(dict(d) for d in self._line_writes),
        )

    def merge(self, other: "WearTracker | WearSnapshot") -> None:
        """Accumulate another tracker's (or snapshot's) counts into this one.

        Used to combine wear observed in separate phases (e.g. warm-up +
        measurement) into one lifetime computation.  Per-line counts are
        merged only when this tracker tracks lines.

        Raises:
            ConfigError: on a bank-count mismatch.
        """
        if other.num_banks != self.num_banks:
            raise ConfigError(
                f"cannot merge wear over {other.num_banks} banks into "
                f"{self.num_banks} banks"
            )
        self.bank_writes += np.asarray(other.bank_writes, dtype=np.int64)
        if self.track_lines:
            if isinstance(other, WearSnapshot):
                histograms = other.line_writes
            else:
                histograms = other._line_writes
            for mine, theirs in zip(self._line_writes, histograms):
                for line, count in theirs.items():
                    mine[line] = mine.get(line, 0) + count

    def reset(self) -> None:
        """Zero all counters."""
        self.bank_writes[:] = 0
        for per_line in self._line_writes:
            per_line.clear()

    def bind_telemetry(self, registry, *, prefix: str = "llc") -> None:
        """Expose per-bank write counters as ``<prefix>.bankN.writes`` gauges.

        Callback gauges read the live counters at snapshot time, so the
        hot :meth:`record_write` path is untouched — interval dumps get
        the wear time series for free.
        """
        for bank in range(self.num_banks):
            registry.gauge(
                f"{prefix}.bank{bank}.writes",
                lambda b=bank: int(self.bank_writes[b]),
            )
        registry.gauge(f"{prefix}.total_writes", self.total_writes)
