"""Per-bank (and sampled per-line) write-wear tracking.

Every write into an L3 bank — a line fill on a miss or an absorbed L2
write-back — rewrites one cache line's worth of cells, so bank wear is
simply the bank's write count.  The tracker also keeps an exact per-line
write histogram per bank (dict-of-dicts, populated lazily) so intra-bank
non-uniformity can be inspected, although the paper's lifetime metric
assumes intra-bank wear-levelling (its subject is *inter-bank* wear; see
``ReRamConfig.intra_bank_wear_spread``).
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import ConfigError, SimulationError


class WearTracker:
    """Write counters for ``num_banks`` ReRAM banks.

    ``record_write(bank)`` is the single hot entry point; per-line
    tracking (``record_write(bank, line=...)``) is optional and costs one
    dict update.
    """

    def __init__(self, num_banks: int, *, track_lines: bool = False) -> None:
        if num_banks <= 0:
            raise ConfigError("need at least one bank")
        self.num_banks = num_banks
        self.track_lines = track_lines
        self.bank_writes = np.zeros(num_banks, dtype=np.int64)
        self._line_writes: list[dict[int, int]] = [dict() for _ in range(num_banks)]

    def record_write(self, bank: int, line: int | None = None) -> None:
        """Count one line-granularity write into ``bank``."""
        if not (0 <= bank < self.num_banks):
            raise SimulationError(f"write to bank {bank} of {self.num_banks}")
        self.bank_writes[bank] += 1
        if self.track_lines and line is not None:
            per_line = self._line_writes[bank]
            per_line[line] = per_line.get(line, 0) + 1

    def total_writes(self) -> int:
        """Writes across all banks."""
        return int(self.bank_writes.sum())

    def writes_of(self, bank: int) -> int:
        """Writes into one bank."""
        if not (0 <= bank < self.num_banks):
            raise SimulationError(f"bank {bank} of {self.num_banks}")
        return int(self.bank_writes[bank])

    def min_write_bank(self) -> int:
        """Bank with the fewest writes (ties -> lowest id).

        This is the Naive scheme's oracle placement query.
        """
        return int(np.argmin(self.bank_writes))

    def line_histogram(self, bank: int) -> dict[int, int]:
        """Per-line write counts of a bank (empty unless track_lines)."""
        if not (0 <= bank < self.num_banks):
            raise SimulationError(f"bank {bank} of {self.num_banks}")
        return dict(self._line_writes[bank])

    def max_line_writes(self, bank: int) -> int:
        """Most-written line's count in a bank (0 when untracked/idle)."""
        hist = self._line_writes[bank]
        return max(hist.values()) if hist else 0

    def reset(self) -> None:
        """Zero all counters."""
        self.bank_writes[:] = 0
        for per_line in self._line_writes:
            per_line.clear()
