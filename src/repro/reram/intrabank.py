"""Intra-bank (inter-set) wear levelling — the complementary technique.

The paper's Related Work cites i2wap [16] and EqualChance [9], which
level wear *within* a bank (hot sets absorb far more writes than cold
ones) and notes they "can be complementarily implemented on top of our
proposed approach".  This module provides that extension: a Start-Gap
style rotator that periodically shifts a bank's line-to-set mapping by
one set, so hot lines migrate across physical sets over time.

:class:`SetWearMeter` measures the per-set write distribution the
rotator is meant to flatten; the ablation benchmark shows the maximum
per-set write count dropping toward the mean as the rotation period
shrinks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cache.cache import Cache
from repro.common.errors import ConfigError


@dataclass
class SetWearMeter:
    """Per-physical-set write counters for one bank."""

    num_sets: int

    def __post_init__(self) -> None:
        if self.num_sets <= 0:
            raise ConfigError("need at least one set")
        self.writes = np.zeros(self.num_sets, dtype=np.int64)

    def record(self, set_idx: int) -> None:
        """Count one write into a physical set."""
        self.writes[set_idx] += 1

    @property
    def total(self) -> int:
        """All writes seen."""
        return int(self.writes.sum())

    @property
    def imbalance(self) -> float:
        """max/mean per-set writes (1.0 = perfectly level)."""
        mean = self.writes.mean()
        return float(self.writes.max() / mean) if mean > 0 else 1.0

    @property
    def variation(self) -> float:
        """Coefficient of variation of per-set writes."""
        mean = self.writes.mean()
        return float(self.writes.std() / mean) if mean > 0 else 0.0


class IntraBankLeveler:
    """Rotate a cache's set mapping every ``period`` writes.

    Args:
        cache: the bank's array (must expose ``rotate_sets``).
        period: writes between rotations (0 disables).
        meter: optional :class:`SetWearMeter` fed with every write's
            physical set.
    """

    def __init__(self, cache: Cache, period: int, meter: SetWearMeter | None = None):
        if period < 0:
            raise ConfigError("rotation period cannot be negative")
        if meter is not None and meter.num_sets != cache.num_sets:
            raise ConfigError("meter/cache set-count mismatch")
        self.cache = cache
        self.period = period
        self.meter = meter
        self.rotations = 0
        self._since_rotation = 0

    def on_write(self, line: int) -> None:
        """Observe one write into the bank (fill or absorbed write-back)."""
        if self.meter is not None:
            self.meter.record(self.cache.set_of(line))
        if self.period == 0:
            return
        self._since_rotation += 1
        if self._since_rotation >= self.period:
            self._since_rotation = 0
            self.cache.rotate_sets(1)
            self.rotations += 1
