"""Metal-oxide ReRAM cell model (Section II-A / Figure 1).

A cell is a metal-oxide layer between two electrodes.  A positive bias on
the top electrode drives ion migration that forms a conductive filament:
the cell enters the low-resistance state (**SET**, logical 1).  Biasing
the bottom electrode ruptures the filament: high-resistance state
(**RESET**, logical 0).  Filament formation/rupture physically degrades
the oxide, which is the endurance limit this paper is about — prototypes
sustain 1e9 [17] to 1e11 [6,7,1] switching events.

This class is the technology-level substrate: the cache layers above
count writes per bank (every line fill/write-back rewrites the line's
cells), and :mod:`repro.reram.endurance` applies the per-cell limit.  The
cell model itself is exercised directly by unit tests and the technology
example, keeping the architectural write-count bookkeeping honest against
a ground-truth cell.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.common.errors import ConfigError, SimulationError


class CellState(enum.Enum):
    """Resistance state of one cell."""

    RESET = 0  # high resistance, logical 0
    SET = 1    # low resistance, logical 1


@dataclass
class ReRamCell:
    """One ReRAM cell with endurance bookkeeping.

    Args:
        endurance: switching events the cell survives (default 1e11,
            the paper's wear-out bound).
        set_latency_ns / reset_latency_ns: switching times; reads are an
            order of magnitude faster, which is why the architecture only
            penalises writes.
    """

    endurance: float = 1e11
    set_latency_ns: float = 10.0
    reset_latency_ns: float = 10.0
    read_latency_ns: float = 1.0
    state: CellState = CellState.RESET
    switch_count: int = 0
    _failed: bool = field(default=False, repr=False)

    def __post_init__(self) -> None:
        if self.endurance <= 0:
            raise ConfigError("cell endurance must be positive")
        if min(self.set_latency_ns, self.reset_latency_ns, self.read_latency_ns) <= 0:
            raise ConfigError("cell latencies must be positive")

    @property
    def failed(self) -> bool:
        """True once the cell has exceeded its endurance."""
        return self._failed

    def read(self) -> int:
        """Non-destructive read of the stored bit."""
        if self._failed:
            raise SimulationError("read of a worn-out ReRAM cell")
        return self.state.value

    def write(self, bit: int) -> float:
        """Program the cell to ``bit``; returns the operation latency (ns).

        Writing the value already stored is free of wear (no filament
        event happens) — the substrate-level analogue of differential
        writes.  Switching increments the wear counter; exceeding the
        endurance marks the cell failed.

        Raises:
            SimulationError: when writing a failed cell.
        """
        if bit not in (0, 1):
            raise SimulationError(f"cell write of non-bit value {bit!r}")
        if self._failed:
            raise SimulationError("write to a worn-out ReRAM cell")
        target = CellState.SET if bit else CellState.RESET
        if target is self.state:
            return self.read_latency_ns  # sense-before-write, no switch
        self.state = target
        self.switch_count += 1
        if self.switch_count > self.endurance:
            self._failed = True
        return self.set_latency_ns if target is CellState.SET else self.reset_latency_ns

    @property
    def remaining_fraction(self) -> float:
        """Fraction of endurance budget still available."""
        return max(0.0, 1.0 - self.switch_count / self.endurance)
