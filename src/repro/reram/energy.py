"""LLC energy model — the paper's Section I motivation, quantified.

"Large last-level caches are a major source of on-chip power consumption
in CMPs ... standby power is up to 80% of their total power [5]" is why
the paper replaces SRAM with ReRAM in the first place: ReRAM has
near-zero leakage but expensive writes.  This module accounts both sides
so the trade-off the paper presupposes can be measured on any simulated
run:

* **static** energy: leakage power x occupied time (the SRAM killer),
* **dynamic** energy: per-event costs for bank reads, bank writes
  (SET/RESET is the ReRAM tax), and NoC hop traversals.

Default coefficients are order-of-magnitude values for a 32 nm-class
node (pJ per event, mW per MB leakage); they are configuration, not
physics — the interesting output is the *ratio* between technologies and
between NUCA schemes, which is robust to the absolute scale.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigError


@dataclass(frozen=True)
class EnergyCoefficients:
    """Per-event energies (pJ) and leakage (mW/MB) for one technology."""

    name: str
    read_pj: float
    write_pj: float
    leakage_mw_per_mb: float

    def __post_init__(self) -> None:
        if min(self.read_pj, self.write_pj) < 0 or self.leakage_mw_per_mb < 0:
            raise ConfigError(f"{self.name}: negative energy coefficient")


#: SRAM LLC at a 32 nm-class node: cheap accesses, heavy leakage.
SRAM_32NM = EnergyCoefficients("SRAM", read_pj=50.0, write_pj=55.0,
                               leakage_mw_per_mb=25.0)

#: Metal-oxide ReRAM: reads comparable to SRAM, writes ~10x, near-zero
#: cell leakage (only the peripheral circuitry draws standby power).
RERAM = EnergyCoefficients("ReRAM", read_pj=60.0, write_pj=600.0,
                           leakage_mw_per_mb=0.02)

#: Energy per flit-hop on the mesh (router + link), pJ.
NOC_HOP_PJ = 12.0


@dataclass
class EnergyReport:
    """Energy breakdown of one simulated interval."""

    technology: str
    static_mj: float
    read_mj: float
    write_mj: float
    noc_mj: float

    @property
    def dynamic_mj(self) -> float:
        """All event-driven energy."""
        return self.read_mj + self.write_mj + self.noc_mj

    @property
    def total_mj(self) -> float:
        """Static + dynamic."""
        return self.static_mj + self.dynamic_mj

    @property
    def static_fraction(self) -> float:
        """Share of total energy that is leakage (the paper's 80% for SRAM)."""
        return self.static_mj / self.total_mj if self.total_mj else 0.0


class LlcEnergyModel:
    """Accumulate LLC energy from event counts.

    Args:
        coefficients: technology energy table.
        capacity_mb: total LLC capacity (leakage scales with it).
    """

    def __init__(self, coefficients: EnergyCoefficients, capacity_mb: float) -> None:
        if capacity_mb <= 0:
            raise ConfigError("capacity must be positive")
        self.coefficients = coefficients
        self.capacity_mb = capacity_mb
        self.reads = 0
        self.writes = 0
        self.noc_hops = 0

    def record(self, *, reads: int = 0, writes: int = 0, noc_hops: int = 0) -> None:
        """Add event counts."""
        if min(reads, writes, noc_hops) < 0:
            raise ConfigError("event counts cannot be negative")
        self.reads += reads
        self.writes += writes
        self.noc_hops += noc_hops

    def report(self, elapsed_seconds: float) -> EnergyReport:
        """Fold counts + time into an :class:`EnergyReport` (millijoules)."""
        if elapsed_seconds < 0:
            raise ConfigError("elapsed time cannot be negative")
        c = self.coefficients
        return EnergyReport(
            technology=c.name,
            static_mj=c.leakage_mw_per_mb * self.capacity_mb * elapsed_seconds,
            read_mj=c.read_pj * self.reads * 1e-9,
            write_mj=c.write_pj * self.writes * 1e-9,
            noc_mj=NOC_HOP_PJ * self.noc_hops * 1e-9,
        )


def energy_of_result(
    result,
    config,
    coefficients: EnergyCoefficients = RERAM,
) -> EnergyReport:
    """Energy report for one :class:`~repro.sim.metrics.WorkloadSchemeResult`.

    Reads are approximated by LLC fetches (hits read a line; misses read
    tags then fill — the fill is in the write count), writes by the wear
    tracker's bank writes, and NoC hops by the mesh statistics embedded
    in the result (mean hops x references).
    """
    model = LlcEnergyModel(coefficients, config.l3_total_bytes / (1 << 20))
    model.record(
        reads=int(result.llc_fetches),          # every fetch reads a bank
        writes=int(result.bank_writes.sum()),   # fills + absorbed write-backs
        noc_hops=int(result.noc_total_hops),
    )
    seconds = result.elapsed_cycles / config.core.clock_hz
    return model.report(seconds)
