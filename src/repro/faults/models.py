"""Seeded, deterministic ReRAM fault models.

Three fault populations, mirroring the end-of-life literature (Mittal's
write-endurance-aware management, arXiv:1311.0041; Escuin et al.'s L2C2
line-disabling forecasts, arXiv:2204.09504):

* :class:`StuckAtFaultModel` — endurance wear-out.  Every line frame of a
  bank gets a deterministic *death threshold* in ``[wear_spread, 1.0]``
  of consumed endurance; a frame is stuck-at (dead, retired from
  placement) once its bank's consumed-endurance fraction crosses the
  threshold.  Per-bank consumption scales with the bank's share of write
  traffic (hot banks age faster), and per-set consumption is further
  weighted by the :class:`~repro.reram.wear.WearTracker` per-line counts
  when available, so hot sets inside a bank die first.
* :class:`TransientFaultModel` — soft errors on reads, a stateless
  counter-hashed Bernoulli stream (no RNG object: the ``n``-th query
  always gives the same verdict for a given seed).
* :class:`BankFailureSchedule` — whole-bank peripheral failures at
  scheduled ages (from :class:`~repro.config.FaultConfig`).

All randomness flows through :func:`~repro.common.rng.derive_rng` with a
dedicated path, so fault sites are a pure function of
``(seed, bank, geometry)`` — two runs with the same seed inject exactly
the same faults, and adding faults never perturbs trace generation.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import ConfigError
from repro.common.rng import derive_rng

#: 64-bit SplitMix multiplier used by the counter-hash transient stream.
_SPLITMIX = 0x9E3779B97F4A7C15
_MASK64 = (1 << 64) - 1


class StuckAtFaultModel:
    """Endurance-driven stuck-at faults over one bank's line frames.

    Args:
        num_sets: sets per bank.
        assoc: ways per set.
        wear_spread: residual intra-bank imbalance (``(0, 1]``); the
            first frame dies at consumed fraction ``wear_spread``, the
            most resilient at 1.0.  ``1.0`` means perfectly uniform
            intra-bank wear: every frame dies together at consumed 1.0.
        seed: experiment seed (``None`` = library default).

    Thresholds are drawn lazily per bank and cached, so a model is cheap
    to construct even for many banks.
    """

    def __init__(
        self,
        num_sets: int,
        assoc: int,
        *,
        wear_spread: float = 0.5,
        seed: int | None = None,
    ) -> None:
        if num_sets <= 0 or assoc <= 0:
            raise ConfigError("fault model needs positive bank geometry")
        if not (0 < wear_spread <= 1.0):
            raise ConfigError("wear spread must be in (0, 1]")
        self.num_sets = num_sets
        self.assoc = assoc
        self.wear_spread = wear_spread
        self.seed = seed
        self._thresholds: dict[int, np.ndarray] = {}

    def thresholds(self, bank: int) -> np.ndarray:
        """``(num_sets, assoc)`` death thresholds of one bank's frames."""
        cached = self._thresholds.get(bank)
        if cached is None:
            rng = derive_rng(self.seed, "faults", "stuckat", bank)
            u = rng.random((self.num_sets, self.assoc))
            cached = self.wear_spread + (1.0 - self.wear_spread) * u
            self._thresholds[bank] = cached
        return cached

    def dead_ways(self, bank: int, consumed_per_set: np.ndarray | float) -> np.ndarray:
        """Dead-frame count per set at the given consumed endurance.

        ``consumed_per_set`` is a scalar or a ``num_sets`` vector of
        consumed-endurance fractions (>= 1.0 kills every frame whose
        threshold it reaches; the hardest frame dies exactly at 1.0).
        """
        consumed = np.asarray(consumed_per_set, dtype=np.float64)
        if consumed.ndim == 0:
            consumed = np.full(self.num_sets, float(consumed))
        elif consumed.shape != (self.num_sets,):
            raise ConfigError(
                f"consumed vector has shape {consumed.shape}, "
                f"expected ({self.num_sets},)"
            )
        dead = consumed[:, None] >= self.thresholds(bank)
        return dead.sum(axis=1).astype(np.int64)


class TransientFaultModel:
    """Counter-hashed Bernoulli stream of transient read faults.

    ``query()`` advances an internal counter and reports whether that
    access suffers a soft fault.  The verdict for access ``n`` is a pure
    function of ``(seed, n)`` (SplitMix64 finalizer), so a replayed run
    faults exactly the same accesses — no RNG state to save.
    """

    def __init__(self, rate: float, *, seed: int | None = None) -> None:
        if not (0 <= rate < 1):
            raise ConfigError("transient fault rate must be in [0, 1)")
        self.rate = rate
        # Fold the seed into a 64-bit stream key via the shared plumbing
        # so the stream is independent of other consumers of the seed.
        self._key = int(
            derive_rng(seed, "faults", "transient").integers(0, 2**63)
        )
        self.count = 0
        self.faults = 0

    @staticmethod
    def _hash01(key: int, index: int) -> float:
        x = (key + index * _SPLITMIX) & _MASK64
        x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
        x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
        x ^= x >> 31
        return x / 2**64

    def query(self) -> bool:
        """Advance the access counter; True when this access faults."""
        if self.rate <= 0:
            return False
        index = self.count
        self.count += 1
        faulty = self._hash01(self._key, index) < self.rate
        if faulty:
            self.faults += 1
        return faulty


class BankFailureSchedule:
    """Whole-bank failures at scheduled service ages.

    A thin, validated wrapper over the ``(bank, fail_age)`` pairs of
    :class:`~repro.config.FaultConfig` that answers "which banks are
    dead at age ``a``" for any bank count.
    """

    def __init__(
        self, entries: tuple[tuple[int, float], ...], *, num_banks: int
    ) -> None:
        if num_banks <= 0:
            raise ConfigError("need at least one bank")
        self.num_banks = num_banks
        self.entries = tuple(
            (int(bank), float(age)) for bank, age in entries
        )
        for bank, _age in self.entries:
            if not (0 <= bank < num_banks):
                raise ConfigError(
                    f"scheduled failure of bank {bank} outside 0..{num_banks - 1}"
                )

    def failed_at(self, age: float) -> frozenset[int]:
        """Banks whose failure age has been reached."""
        return frozenset(b for b, fail_age in self.entries if age >= fail_age)
