"""The fault injector: turns fault models into LLC degradation state.

The :class:`FaultInjector` is the single object the
:class:`~repro.nuca.llc.NucaLLC` consults on its hot paths.  Lifecycle:

1. Construct from a :class:`~repro.config.SystemConfig` and a
   :class:`~repro.config.FaultConfig` (plus the run seed).  The injector
   starts *inert* — no faults — so warm-up runs on pristine hardware.
2. :meth:`derive` consumes a :class:`~repro.reram.wear.WearSnapshot`
   (typically the warm-up wear of this very run) and materialises the
   fault state for the configured service age: per-bank consumed
   endurance, dead frames per set, and fully dead banks.
3. The LLC applies the state (retiring frames, flushing dead banks) and
   thereafter asks :meth:`is_bank_dead` / :meth:`remap_bank` /
   :meth:`transient_fault` per access.

Degradation semantics:

* A **dead frame** is retired from placement: the set's effective
  associativity shrinks; with zero live ways a fill is skipped (the line
  is served from memory every time — the L2C2 "disabled line" regime).
* A **dead bank** stops serving entirely; accesses are *remapped* over
  the surviving banks by a deterministic hash of ``(home bank, line)``,
  each paying ``remap_penalty_cycles`` extra.  With no survivors the LLC
  degrades to a memory pass-through — slow, but never an exception.
* A **transient fault** corrupts one read: the line is dropped and
  refetched from memory.

Everything is deterministic in ``(seed, fault config, wear snapshot)``.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import ConfigError, SimulationError
from repro.config import FaultConfig, SystemConfig
from repro.faults.models import (
    BankFailureSchedule,
    StuckAtFaultModel,
    TransientFaultModel,
)
from repro.reram.wear import WearSnapshot

#: Per-set wear-weight clamp: how much faster/slower than the bank mean a
#: single set may age (keeps sparse warm-up histograms from producing
#: immortal or instantly-dead sets).
_SET_WEIGHT_CLIP = (0.25, 4.0)


class FaultInjector:
    """Deterministic fault state for one NUCA LLC instance."""

    def __init__(
        self,
        config: SystemConfig,
        faults: FaultConfig,
        *,
        seed: int | None = None,
    ) -> None:
        self.config = config
        self.faults = faults
        fault_seed = faults.fault_seed if faults.fault_seed is not None else seed
        self.num_banks = config.num_banks
        self.num_sets = config.l3_bank.num_sets
        self.assoc = config.l3_bank.assoc
        self.remap_penalty_cycles = faults.remap_penalty_cycles
        self._stuck_at = StuckAtFaultModel(
            self.num_sets,
            self.assoc,
            wear_spread=config.reram.intra_bank_wear_spread,
            seed=fault_seed,
        )
        self._transient = TransientFaultModel(faults.transient_rate, seed=fault_seed)
        self._schedule = BankFailureSchedule(
            faults.bank_failures, num_banks=self.num_banks
        )
        # Inert until derive(): warm-up must see pristine hardware.
        self._tel_trace = None
        self._derived = False
        self.dead_banks: frozenset[int] = frozenset()
        self._surviving: tuple[int, ...] = tuple(range(self.num_banks))
        self._dead_ways = np.zeros((self.num_banks, self.num_sets), dtype=np.int64)
        self.consumed = np.zeros(self.num_banks)

    # -- derivation ---------------------------------------------------------

    @property
    def derived(self) -> bool:
        """True once :meth:`derive` has materialised the fault state."""
        return self._derived

    def derive(self, snapshot: WearSnapshot, *, index_shift: int = 0) -> None:
        """Materialise fault state for ``faults.age_fraction``.

        ``snapshot`` supplies the write-traffic shape: per-bank consumed
        endurance scales with each bank's share of the snapshot's writes
        (a bank absorbing twice the mean traffic ages twice as fast), and
        per-set aging is weighted by the snapshot's per-line counts when
        present.  ``index_shift`` is the bank's set-index shift (so line
        addresses map to the same sets the cache uses).

        Raises:
            ConfigError: when the snapshot's bank count does not match.
        """
        if snapshot.num_banks != self.num_banks:
            raise ConfigError(
                f"wear snapshot has {snapshot.num_banks} banks, "
                f"injector expects {self.num_banks}"
            )
        age = self.faults.age_fraction
        writes = snapshot.bank_writes.astype(np.float64)
        mean_writes = float(writes.mean())
        if mean_writes > 0:
            self.consumed = age * writes / mean_writes
        else:
            self.consumed = np.full(self.num_banks, float(age))

        set_mask = self.num_sets - 1
        dead_banks = set(self._schedule.failed_at(age))
        for bank in range(self.num_banks):
            if bank in dead_banks:
                self._dead_ways[bank, :] = self.assoc
                continue
            weights = self._set_weights(
                snapshot.line_histogram(bank), index_shift, set_mask
            )
            self._dead_ways[bank] = self._stuck_at.dead_ways(
                bank, self.consumed[bank] * weights
            )
            if int(self._dead_ways[bank].sum()) == self.num_sets * self.assoc:
                dead_banks.add(bank)
        self.dead_banks = frozenset(dead_banks)
        self._surviving = tuple(
            b for b in range(self.num_banks) if b not in self.dead_banks
        )
        self._derived = True
        if self._tel_trace is not None:
            self._tel_trace.emit(
                "fault.derived",
                age=float(age),
                dead_banks=len(self.dead_banks),
                dead_frames=int(self._dead_ways.sum()),
                capacity=self.effective_capacity_fraction(),
            )

    def _set_weights(
        self, histogram: dict[int, int], index_shift: int, set_mask: int
    ) -> np.ndarray:
        """Per-set aging weights (mean ~1) from a per-line write histogram."""
        if not histogram:
            return np.ones(self.num_sets)
        set_writes = np.zeros(self.num_sets)
        for line, count in histogram.items():
            set_writes[(line >> index_shift) & set_mask] += count
        mean = set_writes.mean()
        if mean <= 0:
            return np.ones(self.num_sets)
        return np.clip(set_writes / mean, *_SET_WEIGHT_CLIP)

    # -- hot-path queries ---------------------------------------------------

    def is_bank_dead(self, bank: int) -> bool:
        """True when the bank serves no accesses at this age."""
        return bank in self.dead_banks

    def remap_bank(self, bank: int, line: int) -> int | None:
        """Surviving bank absorbing a dead bank's traffic for ``line``.

        Deterministic in ``(bank, line)`` so lookups and fills agree
        forever.  Returns None when no bank survives (LLC bypassed).
        """
        if not self._surviving:
            return None
        return self._surviving[(line + bank) % len(self._surviving)]

    def transient_fault(self) -> bool:
        """Draw the next read's transient-fault verdict."""
        return self._transient.query()

    # -- applied-state accessors -------------------------------------------

    def dead_ways_of(self, bank: int) -> np.ndarray:
        """Dead-frame count per set of one bank."""
        if not (0 <= bank < self.num_banks):
            raise SimulationError(f"bank {bank} of {self.num_banks}")
        return self._dead_ways[bank].copy()

    def way_limits_of(self, bank: int) -> np.ndarray:
        """Live ways per set of one bank (what the cache may still use)."""
        return self.assoc - self.dead_ways_of(bank)

    def effective_capacity_fraction(self) -> float:
        """Live frames / total frames across the whole LLC."""
        total = self.num_banks * self.num_sets * self.assoc
        return 1.0 - float(self._dead_ways.sum()) / total

    @property
    def transient_faults_injected(self) -> int:
        """Transient faults delivered so far."""
        return self._transient.faults

    def bind_telemetry(self, registry, *, trace=None) -> None:
        """Register ``faults.*`` gauges and attach the event trace.

        Gauges track the degradation state (dead banks, retired frames,
        mean consumed endurance, injected soft faults); ``trace``
        additionally receives one ``fault.derived`` event when
        :meth:`derive` materialises the fault state.
        """
        self._tel_trace = trace
        registry.gauge("faults.dead_banks", lambda: len(self.dead_banks))
        registry.gauge("faults.dead_frames", lambda: int(self._dead_ways.sum()))
        registry.gauge(
            "faults.consumed_mean", lambda: float(self.consumed.mean())
        )
        registry.gauge(
            "faults.transient_injected", lambda: self._transient.faults
        )

    def describe(self) -> str:
        """One-line summary for reports and logs."""
        return (
            f"age={self.faults.age_fraction:.2f} "
            f"capacity={self.effective_capacity_fraction():.1%} "
            f"dead_banks={sorted(self.dead_banks)} "
            f"transient_rate={self.faults.transient_rate:g}"
        )
