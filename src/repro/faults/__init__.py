"""End-of-life fault injection and graceful degradation.

The paper's lifetime analysis stops at *when* the first ReRAM bank dies;
this package models what happens *after*: seeded, deterministic fault
models (:mod:`repro.faults.models`) and the :class:`FaultInjector`
(:mod:`repro.faults.injector`) that the NUCA LLC consults so worn-out
frames are retired, dead banks degrade to remapping instead of crashing,
and every degraded-capacity run completes with graceful-degradation
metrics (effective capacity, remap traffic, IPC-vs-age).

Entry points: a :class:`~repro.config.FaultConfig` passed to
:func:`~repro.sim.runner.run_workload`, the
``python -m repro endoflife`` command, and
:func:`repro.experiments.endoflife.run_endoflife`.
"""

from repro.faults.injector import FaultInjector
from repro.faults.models import (
    BankFailureSchedule,
    StuckAtFaultModel,
    TransientFaultModel,
)

__all__ = [
    "BankFailureSchedule",
    "FaultInjector",
    "StuckAtFaultModel",
    "TransientFaultModel",
]
