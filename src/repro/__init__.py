"""repro — a full Python reproduction of *Re-NUCA: A Practical NUCA
Architecture for ReRAM based Last-Level Caches* (IPDPS 2016).

Quick start::

    from repro import baseline_config, make_workloads, run_workload

    config = baseline_config()
    wl = make_workloads(num_cores=config.num_cores)[0]
    for scheme in ("S-NUCA", "R-NUCA", "Re-NUCA"):
        res = run_workload(wl, scheme, config, n_instructions=100_000)
        print(scheme, f"IPC={res.ipc:.2f}", f"min life={res.min_lifetime:.2f}y")

Package layout: substrates (``trace``, ``cpu``, ``cache``, ``noc``,
``mem``, ``reram``, ``nuca``), the paper's contribution (``core``), the
two-stage runner (``sim``) and per-figure drivers (``experiments``).
"""

from repro.config import (
    FaultConfig,
    SystemConfig,
    baseline_config,
    scaled_config,
    sensitivity_l2_128k,
    sensitivity_l3_1m,
    sensitivity_rob_168,
)
from repro.sim.metrics import MatrixResult, WorkloadSchemeResult
from repro.sim.runner import (
    DEFAULT_INSTRUCTIONS,
    Stage1Cache,
    run_matrix,
    run_workload,
)
from repro.sim.system import System
from repro.telemetry import Telemetry, load_events
from repro.trace.workloads import Workload, make_workloads, single_app_workload

__version__ = "1.0.0"

__all__ = [
    "FaultConfig",
    "SystemConfig",
    "baseline_config",
    "scaled_config",
    "sensitivity_l2_128k",
    "sensitivity_l3_1m",
    "sensitivity_rob_168",
    "MatrixResult",
    "WorkloadSchemeResult",
    "DEFAULT_INSTRUCTIONS",
    "Stage1Cache",
    "run_matrix",
    "run_workload",
    "System",
    "Telemetry",
    "load_events",
    "Workload",
    "make_workloads",
    "single_app_workload",
    "__version__",
]
