#!/usr/bin/env python3
"""MESI coherence substrate demo (Table I's protocol).

The paper's multiprogrammed mixes never share data, so coherence only
has to be *correct* there — but the substrate is a full directory MESI
implementation.  This example runs a synthetic multithreaded pattern
(a shared read-mostly table plus a migratory lock-protected counter)
through the directory and reports the protocol traffic.

Run:
    python examples/coherent_sharing.py
"""

import numpy as np

from repro.cache.coherence import MesiDirectory, MesiState


def main() -> None:
    cores = 4
    directory = MesiDirectory(cores)
    rng = np.random.default_rng(7)

    shared_table = list(range(0x1000, 0x1040))  # read-mostly, all cores
    counter_line = 0x2000                        # migratory read-modify-write
    private_base = 0x10_0000                     # per-core private heaps

    for step in range(20_000):
        core = int(rng.integers(0, cores))
        p = rng.random()
        if p < 0.55:
            directory.read(core, shared_table[int(rng.integers(0, 64))])
        elif p < 0.65:
            # Migratory pattern: read then write the shared counter.
            directory.read(core, counter_line)
            directory.write(core, counter_line)
        elif p < 0.95:
            line = private_base + (core << 16) + int(rng.integers(0, 256))
            if rng.random() < 0.4:
                directory.write(core, line)
            else:
                directory.read(core, line)
        else:
            line = private_base + (core << 16) + int(rng.integers(0, 256))
            directory.evict(core, line)
        if step % 4096 == 0:
            directory.check_invariants()

    directory.check_invariants()
    stats = directory.stats
    print("Directory MESI protocol statistics after 20k operations:")
    print(f"  read requests        {stats.read_requests}")
    print(f"  write requests       {stats.write_requests}")
    print(f"  invalidations sent   {stats.invalidations_sent}")
    print(f"  downgrades sent      {stats.downgrades_sent}")
    print(f"  dirty forwards       {stats.dirty_forwards}")
    print(f"  silent E->M upgrades {stats.silent_upgrades}")
    print(f"  writebacks received  {stats.writebacks_received}")

    shared_copies = sum(
        directory.private_state(c, shared_table[0]) is not MesiState.INVALID
        for c in range(cores)
    )
    print(f"\nShared-table line 0 currently cached by {shared_copies} cores "
          f"(read-mostly data stays replicated).")
    owner = [
        c for c in range(cores)
        if directory.private_state(c, counter_line) is MesiState.MODIFIED
    ]
    print(f"Migratory counter owned (M) by core(s): {owner or 'none'} "
          f"(ownership migrates write by write).")
    print("All protocol invariants held throughout the run.")


if __name__ == "__main__":
    main()
