#!/usr/bin/env python3
"""LLC energy study: why the paper builds its L3 from ReRAM at all.

Section I motivates non-volatile LLCs with leakage: "standby power is up
to 80% of their total power" for large SRAM caches.  This example runs
one workload, then prices the same LLC activity under SRAM and ReRAM
coefficients and breaks the energy down into static/read/write/NoC —
showing both the leakage win and the ReRAM write tax the rest of the
paper then has to manage.

Run:
    python examples/energy_study.py
"""

from repro import Stage1Cache, baseline_config, make_workloads, run_workload
from repro.reram.energy import RERAM, SRAM_32NM, energy_of_result


def show(report) -> None:
    print(f"  {report.technology:6s} total {report.total_mj:10.3f} mJ | "
          f"static {report.static_mj:10.3f} ({report.static_fraction:5.1%}) | "
          f"reads {report.read_mj:7.3f} | writes {report.write_mj:7.3f} | "
          f"NoC {report.noc_mj:7.3f}")


def main() -> None:
    config = baseline_config()
    workload = make_workloads(num_cores=config.num_cores, seed=5)[2]
    stage1 = Stage1Cache()
    print(f"Workload {workload.name}: {', '.join(sorted(set(workload.apps)))}\n")

    for scheme in ("S-NUCA", "Re-NUCA", "R-NUCA"):
        result = run_workload(
            workload, scheme, config, seed=5,
            n_instructions=40_000, stage1=stage1,
        )
        seconds = result.elapsed_cycles / config.core.clock_hz
        print(f"--- {scheme}: {int(result.llc_fetches)} fetches, "
              f"{int(result.bank_writes.sum())} bank writes over "
              f"{seconds * 1e3:.2f} ms ---")
        show(energy_of_result(result, config, SRAM_32NM))
        show(energy_of_result(result, config, RERAM))
        print()

    print("The SRAM LLC is leakage-dominated regardless of scheme; the ReRAM")
    print("LLC is activity-dominated, so placement policies that change write")
    print("traffic (the subject of this paper) also move its energy.")


if __name__ == "__main__":
    main()
