#!/usr/bin/env python3
"""Miniature Section V-C sensitivity sweep.

Runs two workloads under S-NUCA / R-NUCA / Re-NUCA on the baseline
machine and each sensitivity variant (128 KB L2, 1 MB L3 banks, 168-entry
ROB) and prints how the Re-NUCA-over-R-NUCA lifetime gain holds up —
the robustness claim of the paper's Table III.

Run (takes a couple of minutes):
    python examples/sensitivity_sweep.py [instructions_per_core]
"""

import sys

from repro import Stage1Cache, make_workloads, run_workload
from repro.experiments.sensitivity import SENSITIVITY_CONFIGS

SCHEMES = ("S-NUCA", "Re-NUCA", "R-NUCA")


def main() -> None:
    budget = int(sys.argv[1]) if len(sys.argv) > 1 else 40_000
    stage1 = Stage1Cache()
    print(f"{'config':>14s} {'scheme':>8s} {'IPC':>7s} {'raw min life':>13s}")
    for label, factory in SENSITIVITY_CONFIGS.items():
        config = factory()
        workloads = make_workloads(num_cores=config.num_cores, count=2, seed=4)
        results = {}
        for scheme in SCHEMES:
            min_life = float("inf")
            ipc = 0.0
            for wl in workloads:
                r = run_workload(
                    wl, scheme, config, seed=4,
                    n_instructions=budget, stage1=stage1,
                )
                min_life = min(min_life, r.min_lifetime)
                ipc += r.ipc / len(workloads)
            results[scheme] = (ipc, min_life)
            print(f"{label:>14s} {scheme:>8s} {ipc:7.2f} {min_life:12.2f}y")
        gain = results["Re-NUCA"][1] / results["R-NUCA"][1]
        print(f"{'':>14s} Re-NUCA/R-NUCA minimum-lifetime gain: {gain:.2f}x"
              f"  (paper: 1.21x-1.42x across configs)\n")


if __name__ == "__main__":
    main()
