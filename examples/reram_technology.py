#!/usr/bin/env python3
"""ReRAM technology substrate demo (Section II-A / Figure 1).

Exercises the cell-level model — SET/RESET switching, redundant-write
filtering, endurance exhaustion — and then scales the arithmetic up to
the paper's lifetime numbers: how long does a 2 MB bank survive under a
given write rate at 1e11 writes/cell?

Run:
    python examples/reram_technology.py
"""

import numpy as np

from repro.config import baseline_config
from repro.reram.cell import ReRamCell
from repro.reram.endurance import bank_lifetime_years


def main() -> None:
    print("=== One metal-oxide ReRAM cell ===")
    cell = ReRamCell(endurance=10)
    latency = cell.write(1)
    print(f"SET    -> state {cell.read()}, {latency:.0f} ns, "
          f"switches {cell.switch_count}")
    latency = cell.write(1)
    print(f"SET again (redundant) -> {latency:.0f} ns, "
          f"switches {cell.switch_count} (no filament event, no wear)")
    latency = cell.write(0)
    print(f"RESET  -> state {cell.read()}, {latency:.0f} ns, "
          f"switches {cell.switch_count}")
    while not cell.failed:
        cell.write(1 - cell.read())
    print(f"Cell failed after {cell.switch_count} switches "
          f"(endurance budget {cell.endurance:.0f}).\n")

    print("=== Scaling up: bank lifetime under write pressure ===")
    config = baseline_config()
    lines = config.l3_bank.num_lines
    clock = config.core.clock_hz
    print(f"Bank: {lines} lines, {config.reram.cell_endurance:.0e} writes/"
          f"cell, intra-bank spread {config.reram.intra_bank_wear_spread}")
    print(f"{'writes/s':>12s} {'lifetime':>10s}   example workload")
    examples = [
        (2e5, "one quiet core (hmmer-class, WPKI+MPKI ~ 2)"),
        (5e6, "S-NUCA share of a mixed 16-core workload"),
        (2.5e7, "R-NUCA cluster bank next to a heavy streamer"),
        (8e7, "private bank owned by mcf (WPKI+MPKI ~ 124)"),
    ]
    for rate, label in examples:
        cycles = clock  # one second
        years = bank_lifetime_years(
            int(rate), cycles, clock,
            lines_per_bank=lines,
            cell_endurance=config.reram.cell_endurance,
            wear_spread=config.reram.intra_bank_wear_spread,
        )
        print(f"{rate:12.0f} {years:9.2f}y   {label}")

    print(
        "\nThe two-orders-of-magnitude spread between a quiet bank and a"
        "\nwrite-hammered one is exactly the inter-bank imbalance Re-NUCA"
        "\nlevels (Figures 3 and 12)."
    )


if __name__ == "__main__":
    main()
