#!/usr/bin/env python3
"""Wear-levelling study: per-bank write distribution under each scheme.

Reproduces the mechanism behind Figures 3 and 12 on a single adversarial
workload: one write-hammering application (mcf) surrounded by quiet
ones.  Prints an ASCII per-bank write histogram per scheme, making the
paper's point visually: D-NUCA-style placement concentrates the hammer's
writes on the banks around its core, S-NUCA spreads them, and Re-NUCA
spreads exactly the non-critical half.

Run:
    python examples/wear_leveling_study.py
"""

from repro import Stage1Cache, baseline_config, run_workload
from repro.trace.workloads import Workload

SCHEMES = ("S-NUCA", "R-NUCA", "Re-NUCA", "Private", "Naive")

#: mcf on core 5 (an interior mesh node), quiet apps everywhere else.
HAMMER_MIX = Workload(
    "hammer",
    (
        "povray", "namd", "h264ref", "dealII",
        "hmmer", "mcf", "astar", "sjeng",
        "gromacs", "povray", "namd", "dealII",
        "h264ref", "sjeng", "hmmer", "astar",
    ),
)


def bar(value: float, peak: float, width: int = 40) -> str:
    filled = int(round(width * value / peak)) if peak else 0
    return "#" * filled


def main() -> None:
    config = baseline_config()
    stage1 = Stage1Cache()
    print(f"Workload: mcf (WPKI+MPKI ~ 124) on core 5, low-intensity apps "
          f"on the other 15 cores\n")
    for scheme in SCHEMES:
        result = run_workload(
            HAMMER_MIX, scheme, config, seed=2,
            n_instructions=50_000, stage1=stage1,
        )
        writes = result.bank_writes
        peak = float(writes.max())
        cv = writes.std() / writes.mean()
        print(f"--- {scheme}  (write CV {cv:.2f}, min lifetime "
              f"{result.min_lifetime:.2f} y) ---")
        for bank in range(config.num_banks):
            marker = " <- mcf's node" if bank == 5 else ""
            print(f"  CB-{bank:<2d} {writes[bank]:>8d} "
                  f"{bar(writes[bank], peak)}{marker}")
        print()


if __name__ == "__main__":
    main()
