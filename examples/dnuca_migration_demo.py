#!/usr/bin/env python3
"""D-NUCA migration demo: why the paper builds on R-NUCA instead.

Section I: D-NUCA "may exacerbate the lifetime problem in ReRAM caches
because data migration between banks increases the write traffic into
the cache."  This example makes one far core repeatedly reuse a small
set of lines and shows each line hopping bank-by-bank toward the
requester — every hop a ReRAM write — then compares total wear against
R-NUCA, which gets the same locality with a single placement.

Run:
    python examples/dnuca_migration_demo.py
"""

from repro.config import baseline_config
from repro.mem.model import MainMemory
from repro.noc.mesh import Mesh
from repro.nuca import NucaLLC, make_policy
from repro.reram.wear import WearTracker


def build(scheme, config):
    mesh = Mesh(config.noc)
    wear = WearTracker(config.num_banks)
    policy = make_policy(scheme, config, mesh, wear)
    return NucaLLC(config, policy, mesh, MainMemory(config.memory), wear)


def main() -> None:
    config = baseline_config()
    core = 15            # far corner of the 4x4 mesh
    line = 0x40          # static home: bank 0 (opposite corner)

    llc = build("D-NUCA", config)
    print(f"Core {core} repeatedly loads a line whose static home is "
          f"bank {line & 15}:\n")
    print(f"{'access':>7s} {'hit':>4s} {'resident bank':>13s} "
          f"{'hops to core':>12s} {'latency':>8s}")
    for access in range(10):
        lat, hit = llc.fetch(core, line, access * 2_000.0, False)
        bank = llc.resident_bank_of(line)
        print(f"{access:7d} {str(hit):>4s} {bank:13d} "
              f"{llc.mesh.distance(bank, core):12d} {lat:8.0f}")
    print(f"\nMigrations performed: {llc.policy.migrations}; "
          f"total ReRAM writes: {llc.wear.total_writes()} "
          f"(1 fill + 1 per migration hop)")

    print("\nSame reuse pattern, 64 lines, under the three designs:")
    print(f"{'scheme':>8s} {'ReRAM writes':>13s} {'mean hit hops':>14s}")
    for scheme in ("S-NUCA", "R-NUCA", "D-NUCA"):
        llc = build(scheme, config)
        hops = []
        for ln in range(64):
            for access in range(8):
                llc.fetch(core, ln, (ln * 8 + access) * 500.0, False)
            bank = llc.resident_bank_of(ln)
            if bank is not None:
                hops.append(llc.mesh.distance(bank, core))
        print(f"{scheme:>8s} {llc.wear.total_writes():13d} "
              f"{sum(hops) / len(hops):14.2f}")

    print(
        "\nD-NUCA eventually serves hits at distance ~0 but pays for the"
        "\njourney in ReRAM writes; R-NUCA gets one-hop locality with a"
        "\nsingle write — the starting point of the paper's design."
    )


if __name__ == "__main__":
    main()
