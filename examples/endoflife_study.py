#!/usr/bin/env python3
"""End-of-life study: graceful degradation of an aging ReRAM LLC.

The paper's headline lifetime numbers say *when* each scheme's first
bank wears out; this study shows *how the machine degrades* on the way
there.  One workload is swept over service ages (fractions of nominal
cell endurance); at each age the deterministic fault models retire the
frames each scheme's own write distribution has worn out, and the
measured phase runs on the degraded cache.  A scheduled whole-bank
failure is thrown in at age 0.9 to show the remap layer absorbing it.

Expected shape of the result: R-NUCA's clustered writes kill its hot
banks early, S-NUCA fades uniformly, and Re-NUCA — which wear-levels the
non-critical majority of its fills — keeps its IPC cliff furthest out.

Run:
    python examples/endoflife_study.py
    python examples/endoflife_study.py --ages 0.5,1.0 --instructions 20000
"""

import argparse

from repro.experiments.endoflife import (
    DEFAULT_SCHEMES,
    ipc_cliff_age,
    render_endoflife,
    run_endoflife,
)
from repro.sim.runner import Stage1Cache


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workload", type=int, default=1)
    parser.add_argument("--ages", default="0.5,0.75,0.9,1.0",
                        help="comma list of endurance fractions")
    parser.add_argument("--instructions", type=int, default=30_000)
    parser.add_argument("--seed", type=int, default=1)
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    ages = tuple(float(a) for a in args.ages.split(","))

    print(f"Sweeping WL{args.workload} over ages {ages} "
          f"({args.instructions} instructions/core, seed {args.seed});")
    print("bank 7 suffers a scheduled peripheral failure at age 0.9.\n")

    curves = run_endoflife(
        workload_number=args.workload,
        ages=(0.0, *ages),
        schemes=DEFAULT_SCHEMES,
        seed=args.seed,
        n_instructions=args.instructions,
        stage1=Stage1Cache(),
        bank_failures=((7, 0.9),),
        progress=lambda scheme, age: print(f"  {scheme} @ age {age:.2f} ..."),
    )
    print()
    print(render_endoflife(curves))

    print("\nSummary — first age with a >=10% IPC drop:")
    for scheme, points in curves.items():
        cliff = ipc_cliff_age(points)
        where = f"age {cliff:.2f}" if cliff is not None else "beyond the sweep"
        print(f"  {scheme:>8s}: {where}")
    print("\nEvery run above completed on the degraded cache — dead banks")
    print("remap over the survivors instead of stopping the machine.")


if __name__ == "__main__":
    main()
