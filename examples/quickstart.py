#!/usr/bin/env python3
"""Quickstart: compare NUCA schemes on one multiprogrammed workload.

Builds the paper's Table I machine (16 cores, 32 MB ReRAM L3 on a 4x4
mesh), draws one 16-app SPEC-like mix, and runs it under all five NUCA
schemes, printing throughput and ReRAM lifetime for each — a miniature
of the paper's headline comparison.

Run:
    python examples/quickstart.py [instructions_per_core]
"""

import sys

from repro import Stage1Cache, baseline_config, make_workloads, run_workload

SCHEMES = ("S-NUCA", "Naive", "Re-NUCA", "R-NUCA", "Private")


def main() -> None:
    budget = int(sys.argv[1]) if len(sys.argv) > 1 else 60_000
    config = baseline_config()
    workload = make_workloads(num_cores=config.num_cores, seed=1)[0]

    print("Machine:")
    print(config.describe())
    print(f"\nWorkload {workload.name}: {', '.join(workload.apps)}")
    print(f"Budget: {budget} instructions per core\n")

    stage1 = Stage1Cache()  # shared so each app is simulated only once
    print(f"{'scheme':8s} {'IPC':>7s} {'vs S-NUCA':>9s} {'min life':>9s} "
          f"{'wear CV':>8s} {'LLC hit':>8s}")
    baseline_ipc = None
    for scheme in SCHEMES:
        result = run_workload(
            workload, scheme, config, seed=1,
            n_instructions=budget, stage1=stage1,
        )
        if scheme == "S-NUCA":
            baseline_ipc = result.ipc
        writes = result.bank_writes
        cv = writes.std() / writes.mean() if writes.mean() else 0.0
        rel = (
            f"{100 * (result.ipc / baseline_ipc - 1):+5.1f}%"
            if baseline_ipc
            else "   ref"
        )
        print(
            f"{scheme:8s} {result.ipc:7.2f} {rel:>9s} "
            f"{result.min_lifetime:8.2f}y {cv:8.2f} "
            f"{result.llc_fetch_hit_rate:8.2f}"
        )

    print(
        "\nExpected shape (the paper's story): Naive levels wear perfectly"
        " but is slowest;\nPrivate is fastest but burns out one bank;"
        " Re-NUCA trades a little of R-NUCA's\nspeed for a much longer"
        " minimum lifetime."
    )


if __name__ == "__main__":
    main()
