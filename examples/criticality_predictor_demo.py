#!/usr/bin/env python3
"""Criticality predictor walk-through (Sections IV-A/IV-B).

Runs one pointer-chasing application (mcf) through the stage-1 core
model and shows what the Criticality Predictor Table learned: the
per-PC ROB-block ratios, the accuracy/coverage trade-off across the
paper's thresholds (Figures 7/8/9), and a peek at the CPT contents.

Run:
    python examples/criticality_predictor_demo.py [app]
"""

import sys

from repro.config import baseline_config
from repro.cpu.core import AppSimulator
from repro.experiments.report import format_table


def main() -> None:
    app = sys.argv[1] if len(sys.argv) > 1 else "mcf"
    config = baseline_config()
    sim = AppSimulator(app, config, seed=3)
    result = sim.run(120_000)

    print(f"Application: {app}")
    print(f"Simulated {result.instructions} instructions, IPC {result.ipc:.2f}")
    print(f"Loads committed: {result.meters.loads}; "
          f"{result.meters.noncritical_load_percent:.1f}% never blocked "
          f"the ROB head (Figure 5's metric)\n")

    meters = result.meters
    thresholds = meters.thresholds
    print("Threshold sweep (Figures 7/8/9):")
    print(format_table(
        ["threshold"] + [f"{t:g}%" for t in thresholds],
        [
            ["accuracy %"] + [meters.accuracy_percent()[t] for t in thresholds],
            ["non-critical blocks %"]
            + [meters.noncritical_block_percent()[t] for t in thresholds],
            ["non-critical writes %"]
            + [meters.noncritical_write_percent()[t] for t in thresholds],
        ],
    ))

    print("\nBusiest Criticality Predictor Table entries "
          "(PC -> numLoads, robBlocks, ratio):")
    snapshot = sim.cpt.snapshot()
    busiest = sorted(snapshot.items(), key=lambda kv: -kv[1][0])[:12]
    rows = [
        (f"{pc:#06x}", loads, blocks, blocks / loads if loads else 0.0)
        for pc, (loads, blocks) in busiest
    ]
    print(format_table(["PC", "numLoads", "robBlocks", "ratio"], rows))
    print(
        "\nPCs with ratio >= 0.03 are predicted critical at the paper's 3%"
        " threshold:\npointer-chase PCs sit near 1.0, prefetched streaming"
        " PCs near 0.0."
    )


if __name__ == "__main__":
    main()
